#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/trace.h"
#include "common/zipf.h"
#include "log/recovery_log.h"
#include "txn/script.h"

namespace ava3 {
namespace {

// --- Status ---------------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::NotFound("item 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: item 7");
}

TEST(StatusTest, RetryableClassification) {
  EXPECT_TRUE(Status::Aborted("x").IsRetryable());
  EXPECT_TRUE(Status::Deadlock("x").IsRetryable());
  EXPECT_TRUE(Status::TimedOut("x").IsRetryable());
  EXPECT_FALSE(Status::InvalidArgument("x").IsRetryable());
  EXPECT_FALSE(Status::Internal("x").IsRetryable());
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err(Status::NotFound("nope"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

// --- Rng --------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.Uniform(10), 10u);
    int64_t v = r.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialHasRoughlyTheRequestedMean) {
  Rng r(7);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.Exponential(100.0);
  EXPECT_NEAR(sum / n, 100.0, 5.0);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng a(9);
  Rng forked = a.Fork();
  EXPECT_NE(a.Next(), forked.Next());
}

TEST(RngTest, UniformIsUnbiasedChiSquaredSmoke) {
  const uint64_t kBound = 3;
  const int kBuckets = 3;
  const int kSamples = 30000;
  Rng r(2026);
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[r.Uniform(kBound)];
  const double expected = static_cast<double>(kSamples) / kBuckets;
  double chi2 = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const double d = counts[b] - expected;
    chi2 += d * d / expected;
  }
  // 2 degrees of freedom: p=0.001 critical value is 13.8.
  EXPECT_LT(chi2, 13.8);
}

TEST(RngTest, UniformHandlesHugeBounds) {
  // Bounds just under 2^64 force the rejection path to matter: modulo
  // would double-weight [0, 2^63) relative to [2^63, bound).
  Rng r(11);
  const uint64_t kBound = (uint64_t{1} << 63) + (uint64_t{1} << 62);
  int high = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = r.Uniform(kBound);
    EXPECT_LT(v, kBound);
    if (v >= (uint64_t{1} << 63)) ++high;
  }
  // The top third of the range should get about a third of the draws
  // (a modulo sampler would give it about a fifth).
  EXPECT_GT(high, n / 4);
  EXPECT_LT(high, n / 2);
}

TEST(RngTest, UniformBoundOneIsAlwaysZero) {
  Rng r(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.Uniform(1), 0u);
}

// --- Zipf -------------------------------------------------------------------

TEST(ZipfTest, ZeroThetaIsUniformish) {
  Rng r(5);
  ZipfGenerator z(100, 0.0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = z.Next(r);
    EXPECT_LT(v, 100u);
    seen.insert(v);
  }
  EXPECT_GT(seen.size(), 90u);
}

TEST(ZipfTest, HighThetaIsSkewed) {
  Rng r(5);
  ZipfGenerator z(1000, 0.99);
  int hot = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (z.Next(r) < 10) ++hot;  // top-10 ranks
  }
  // Under heavy skew the top 1% of items draw a large share of accesses.
  EXPECT_GT(hot, n / 4);
}

TEST(ZipfTest, RanksNeverLeaveTheDomain) {
  // The continuous inverse-CDF reaches exactly n as u -> 1, so an
  // unclamped generator occasionally returns the out-of-range rank n.
  // Sweep enough draws over several (n, theta) points to hit the tail.
  for (uint64_t n : {2ull, 3ull, 10ull, 1000ull}) {
    for (double theta : {0.0, 0.3, 0.6, 0.9, 0.99}) {
      Rng r(n * 1000 + static_cast<uint64_t>(theta * 100));
      ZipfGenerator z(n, theta);
      for (int i = 0; i < 200000; ++i) {
        EXPECT_LT(z.Next(r), n) << "n=" << n << " theta=" << theta;
      }
    }
  }
}

TEST(ZipfTest, SingleItemDomainIsConstantZero) {
  // n == 1 used to compute a negative eta (division by 1 - zeta2/zeta_n
  // with zeta2 > zeta_1); the generator must simply return rank 0.
  Rng r(5);
  for (double theta : {0.0, 0.5, 0.99}) {
    ZipfGenerator z(1, theta);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(z.Next(r), 0u);
  }
  ZipfGenerator empty(0, 0.5);
  EXPECT_EQ(empty.Next(r), 0u);
}

TEST(ZipfTest, MoreSkewMeansMoreMassOnTopRanks) {
  const int n = 20000;
  double prev_share = 0.0;
  for (double theta : {0.0, 0.4, 0.8, 0.99}) {
    Rng r(42);
    ZipfGenerator z(500, theta);
    int top = 0;
    for (int i = 0; i < n; ++i) {
      if (z.Next(r) < 5) ++top;
    }
    const double share = static_cast<double>(top) / n;
    EXPECT_GT(share, prev_share) << "theta=" << theta;
    prev_share = share;
  }
}

// --- Histogram ----------------------------------------------------------------

TEST(HistogramTest, PercentilesAndStats) {
  Histogram h;
  for (int64_t v = 1; v <= 100; ++v) h.Add(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_NEAR(h.Percentile(50), 50, 1);
  EXPECT_NEAR(h.Percentile(99), 99, 1);
  EXPECT_EQ(h.Percentile(100), 100);
  EXPECT_EQ(h.Percentile(0), 1);
}

TEST(HistogramTest, EmptyIsSafe) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(50), 0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, SingleSampleIsEveryPercentile) {
  Histogram h;
  h.Add(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
  EXPECT_DOUBLE_EQ(h.Mean(), 42.0);
  EXPECT_EQ(h.Percentile(0), 42);
  EXPECT_EQ(h.Percentile(50), 42);
  EXPECT_EQ(h.Percentile(100), 42);
}

TEST(HistogramTest, ExtremePercentilesAreMinAndMax) {
  Histogram h;
  h.Add(7);
  h.Add(-3);
  h.Add(100);
  EXPECT_EQ(h.Percentile(0), -3);
  EXPECT_EQ(h.Percentile(100), 100);
}

TEST(HistogramTest, AddAfterPercentileQueryStillSorts) {
  Histogram h;
  h.Add(10);
  EXPECT_EQ(h.Percentile(50), 10);
  h.Add(5);
  EXPECT_EQ(h.Percentile(0), 5);
}

TEST(HistogramTest, OutOfRangePercentilesClampToEndpoints) {
  Histogram h;
  h.Add(3);
  h.Add(9);
  EXPECT_EQ(h.Percentile(-20), 3);
  EXPECT_EQ(h.Percentile(150), 9);
}

TEST(HistogramTest, MergeCombinesSamplesAndStats) {
  Histogram a, b;
  for (int64_t v = 1; v <= 50; ++v) a.Add(v);
  for (int64_t v = 51; v <= 100; ++v) b.Add(v);
  a.Merge(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_EQ(a.min(), 1);
  EXPECT_EQ(a.max(), 100);
  EXPECT_DOUBLE_EQ(a.Mean(), 50.5);
  EXPECT_NEAR(a.Percentile(50), 50, 1);
  EXPECT_EQ(a.Percentile(100), 100);
}

TEST(HistogramTest, MergeWithEmptyPreservesStats) {
  Histogram a, empty;
  a.Add(-5);
  a.Add(7);
  a.Merge(empty);  // must not absorb the empty histogram's sentinels
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), -5);
  EXPECT_EQ(a.max(), 7);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.min(), -5);
  EXPECT_EQ(empty.max(), 7);
  EXPECT_EQ(empty.Percentile(50), 7);
}

TEST(HistogramTest, MergeAfterSortRestoresOrdering) {
  Histogram a, b;
  a.Add(10);
  EXPECT_EQ(a.Percentile(50), 10);  // forces the sorted state
  b.Add(1);
  a.Merge(b);
  EXPECT_EQ(a.Percentile(0), 1);  // merge must re-sort
}

// --- TraceSink ----------------------------------------------------------------

TEST(TraceTest, DisabledSinkRecordsNothing) {
  TraceSink sink;
  sink.Emit(1, 0, "hello");
  EXPECT_TRUE(sink.events().empty());
}

TEST(TraceTest, EnabledSinkRecordsAndMatches) {
  TraceSink sink;
  sink.Enable(true);
  sink.Emit(1, 0, "T1 commits");
  sink.Emit(2, 1, "T2 moveToFuture(1->2)");
  EXPECT_EQ(sink.events().size(), 2u);
  EXPECT_EQ(sink.Matching("moveToFuture").size(), 1u);
  EXPECT_EQ(sink.Matching("commits").size(), 1u);
  EXPECT_EQ(sink.Matching("nothing").size(), 0u);
}

// --- RecoveryLog ----------------------------------------------------------------

TEST(RecoveryLogTest, BackwardScanStopsAtBegin) {
  wal::RecoveryLog log;
  wal::LogRecord begin;
  begin.kind = wal::LogRecord::Kind::kBegin;
  begin.txn = 1;
  log.Append(begin);
  for (int i = 0; i < 3; ++i) {
    wal::LogRecord redo;
    redo.kind = wal::LogRecord::Kind::kRedo;
    redo.txn = 1;
    redo.item = i;
    log.Append(redo);
  }
  std::vector<ItemId> seen;
  int visited = log.ForEachOfTxnBackwards(1, [&](const wal::LogRecord& r) {
    if (r.kind == wal::LogRecord::Kind::kRedo) seen.push_back(r.item);
  });
  EXPECT_EQ(visited, 4);  // 3 redos + begin
  EXPECT_EQ(seen, (std::vector<ItemId>{2, 1, 0}));  // newest first
  EXPECT_EQ(log.records_scanned(), 4u);
}

TEST(RecoveryLogTest, PerTxnIsolationAndForget) {
  wal::RecoveryLog log;
  wal::LogRecord a;
  a.kind = wal::LogRecord::Kind::kBegin;
  a.txn = 1;
  log.Append(a);
  wal::LogRecord b = a;
  b.txn = 2;
  log.Append(b);
  EXPECT_EQ(log.live_txns(), 2u);
  EXPECT_EQ(log.ForEachOfTxnBackwards(1, [](const wal::LogRecord&) {}), 1);
  log.ForgetTxn(1);
  EXPECT_EQ(log.live_txns(), 1u);
  EXPECT_EQ(log.ForEachOfTxnBackwards(1, [](const wal::LogRecord&) {}), 0);
}

// --- TxnScript -------------------------------------------------------------------

TEST(ScriptTest, ValidatesGoodTree) {
  auto s = txn::TreeTxn(TxnKind::kUpdate, 0, {txn::Op::Write(1, 5)},
                        {{1, {txn::Op::Read(1001)}}});
  EXPECT_TRUE(s.Validate(3).ok());
  EXPECT_EQ(s.ChildrenOf(0), std::vector<int>{1});
  EXPECT_EQ(s.TotalOps(), 2);
}

TEST(ScriptTest, RejectsBadShapes) {
  txn::TxnScript empty;
  EXPECT_FALSE(empty.Validate(3).ok());

  // Duplicate node.
  txn::TxnScript dup;
  dup.kind = TxnKind::kUpdate;
  dup.subtxns.push_back({0, -1, {}});
  dup.subtxns.push_back({0, 0, {}});
  EXPECT_FALSE(dup.Validate(3).ok());

  // Node out of range.
  txn::TxnScript range;
  range.subtxns.push_back({7, -1, {}});
  EXPECT_FALSE(range.Validate(3).ok());

  // Child before parent.
  txn::TxnScript order;
  order.subtxns.push_back({0, -1, {}});
  order.subtxns.push_back({1, 2, {}});
  EXPECT_FALSE(order.Validate(3).ok());

  // Query with a write.
  txn::TxnScript q = txn::SingleNodeQuery(0, {1});
  q.subtxns[0].ops.push_back(txn::Op::Write(1, 5));
  EXPECT_FALSE(q.Validate(3).ok());
}

TEST(ScriptTest, ThinkOpsAreAllowedAndNotCountedAsOps) {
  auto s = txn::SingleNodeUpdate(0, {txn::Op::Think(100), txn::Op::Add(1, 2)});
  EXPECT_TRUE(s.Validate(1).ok());
  EXPECT_EQ(s.TotalOps(), 1);
}

}  // namespace
}  // namespace ava3
