// End-to-end smoke tests: a Database with the AVA3 engine executes simple
// transactions, versions advance, and the example of the paper's start-up
// state holds. Deeper protocol behaviour is covered by the dedicated test
// files; this file gates the basic plumbing.

#include <gtest/gtest.h>

#include "engine/database.h"

namespace ava3 {
namespace {

using db::Database;
using db::DatabaseOptions;
using db::Scheme;
using db::TxnResult;
using txn::Op;

DatabaseOptions Opts(Scheme scheme = Scheme::kAva3, int nodes = 3) {
  DatabaseOptions o;
  o.scheme = scheme;
  o.num_nodes = nodes;
  return o;
}

TEST(SmokeTest, InitialControlStateMatchesPaper) {
  Database dbase(Opts());
  auto* eng = dbase.ava3_engine();
  ASSERT_NE(eng, nullptr);
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(eng->control(n).q(), 0);
    EXPECT_EQ(eng->control(n).u(), 1);
    EXPECT_EQ(eng->control(n).g(), -1);
    EXPECT_EQ(eng->control(n).UpdateCount(0), 0);
    EXPECT_EQ(eng->control(n).UpdateCount(1), 0);
    EXPECT_EQ(eng->control(n).QueryCount(0), 0);
  }
  EXPECT_TRUE(eng->CheckInvariants().ok());
}

TEST(SmokeTest, SingleNodeUpdateCommitsInVersionOne) {
  Database dbase(Opts());
  dbase.engine().LoadInitial(0, 7, 100);
  TxnResult res = dbase.RunToCompletion(
      txn::SingleNodeUpdate(0, {Op::Add(7, 5), Op::Read(7)}));
  EXPECT_EQ(res.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(res.commit_version, 1);
  // The write landed in version 1; version 0 still has the old value.
  auto* eng = dbase.ava3_engine();
  auto v1 = eng->store(0).ReadExact(7, 1);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->value, 105);
  auto v0 = eng->store(0).ReadExact(7, 0);
  ASSERT_TRUE(v0.ok());
  EXPECT_EQ(v0->value, 100);
}

TEST(SmokeTest, QueryReadsVersionZeroBeforeAdvancement) {
  Database dbase(Opts());
  dbase.engine().LoadInitial(0, 7, 100);
  // Commit an update first; queries must still see version 0.
  TxnResult upd =
      dbase.RunToCompletion(txn::SingleNodeUpdate(0, {Op::Write(7, 999)}));
  ASSERT_EQ(upd.outcome, TxnOutcome::kCommitted);
  TxnResult q = dbase.RunToCompletion(txn::SingleNodeQuery(0, {7}));
  EXPECT_EQ(q.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(q.commit_version, 0);
  ASSERT_EQ(q.reads.size(), 1u);
  EXPECT_TRUE(q.reads[0].found);
  EXPECT_EQ(q.reads[0].value, 100);  // stale by design
}

TEST(SmokeTest, AdvancementMakesNewDataReadable) {
  Database dbase(Opts());
  auto* eng = dbase.ava3_engine();
  dbase.engine().LoadInitial(0, 7, 100);
  ASSERT_EQ(dbase.RunToCompletion(txn::SingleNodeUpdate(0, {Op::Write(7, 999)}))
                .outcome,
            TxnOutcome::kCommitted);
  eng->TriggerAdvancement(0);
  dbase.RunFor(5 * kSecond);
  EXPECT_FALSE(eng->AdvancementInProgress());
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(eng->control(n).q(), 1) << "node " << n;
    EXPECT_EQ(eng->control(n).u(), 2) << "node " << n;
    EXPECT_EQ(eng->control(n).g(), 0) << "node " << n;
  }
  TxnResult q = dbase.RunToCompletion(txn::SingleNodeQuery(0, {7}));
  ASSERT_EQ(q.reads.size(), 1u);
  EXPECT_EQ(q.reads[0].value, 999);
  EXPECT_EQ(dbase.metrics().advancements(), 1u);
  EXPECT_TRUE(eng->CheckInvariants().ok());
}

TEST(SmokeTest, DistributedUpdateAcrossThreeNodes) {
  Database dbase(Opts());
  dbase.engine().LoadInitial(0, 1, 10);
  dbase.engine().LoadInitial(1, 1001, 20);
  dbase.engine().LoadInitial(2, 2001, 30);
  auto script = txn::TreeTxn(
      TxnKind::kUpdate, 0, {Op::Add(1, 1)},
      {{1, {Op::Add(1001, 1)}}, {2, {Op::Add(2001, 1)}}});
  TxnResult res = dbase.RunToCompletion(script);
  EXPECT_EQ(res.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(res.commit_version, 1);
  dbase.RunFor(1 * kSecond);  // let child commits land
  auto* eng = dbase.ava3_engine();
  EXPECT_EQ(eng->store(1).ReadExact(1001, 1)->value, 21);
  EXPECT_EQ(eng->store(2).ReadExact(2001, 1)->value, 31);
  EXPECT_EQ(eng->ActiveSubtxns(), 0);
}

TEST(SmokeTest, DistributedQueryAggregatesChildReads) {
  Database dbase(Opts());
  dbase.engine().LoadInitial(0, 1, 10);
  dbase.engine().LoadInitial(1, 1001, 20);
  auto script = txn::TreeTxn(TxnKind::kQuery, 0, {Op::Read(1)},
                             {{1, {Op::Read(1001)}}});
  TxnResult res = dbase.RunToCompletion(script);
  EXPECT_EQ(res.outcome, TxnOutcome::kCommitted);
  ASSERT_EQ(res.reads.size(), 2u);
}

TEST(SmokeTest, BaselinesExecuteBasicTransactions) {
  for (Scheme scheme : {Scheme::kS2pl, Scheme::kMvu, Scheme::kFourV}) {
    // FOURV models a centralized scheme and requires a single node.
    Database dbase(Opts(scheme, scheme == Scheme::kFourV ? 1 : 3));
    dbase.engine().LoadInitial(0, 7, 100);
    TxnResult upd =
        dbase.RunToCompletion(txn::SingleNodeUpdate(0, {Op::Add(7, 5)}));
    EXPECT_EQ(upd.outcome, TxnOutcome::kCommitted)
        << dbase.engine().name() << ": " << upd.status.ToString();
    TxnResult q = dbase.RunToCompletion(txn::SingleNodeQuery(0, {7}));
    EXPECT_EQ(q.outcome, TxnOutcome::kCommitted) << dbase.engine().name();
    ASSERT_EQ(q.reads.size(), 1u) << dbase.engine().name();
    if (scheme == Scheme::kS2pl || scheme == Scheme::kMvu) {
      EXPECT_EQ(q.reads[0].value, 105) << dbase.engine().name();
    } else {
      EXPECT_EQ(q.reads[0].value, 100) << dbase.engine().name();  // stale
    }
  }
}

}  // namespace
}  // namespace ava3
