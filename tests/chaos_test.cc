// Chaos soak: randomized fault injection (message loss, duplication,
// latency-spike reordering, network partitions, and timed crash/restart
// cycles) layered over a concurrent workload, for every engine. Each
// (seed, fault-mix) combination must preserve serializability, the paper's
// Section 6.2 invariants (AVA3/4V), and leak no subtransaction state. A
// final determinism test proves that an inert fault plan is bit-identical
// to a run with no plan at all.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/database.h"
#include "sim/fault_injector.h"
#include "verify/mvsg.h"
#include "verify/serializability.h"
#include "workload/runner.h"

namespace ava3 {
namespace {

using db::Database;
using db::DatabaseOptions;
using db::Scheme;

// One fault-mix archetype. kEverything exercises all classes at once —
// duplicated prepares racing partitions racing crash windows.
enum class Mix {
  kLoss = 0,
  kDuplication,
  kReordering,
  kPartitions,
  kCrashes,
  kEverything,
  kNumMixes,
};

const char* MixName(Mix mix) {
  switch (mix) {
    case Mix::kLoss: return "loss";
    case Mix::kDuplication: return "dup";
    case Mix::kReordering: return "reorder";
    case Mix::kPartitions: return "partition";
    case Mix::kCrashes: return "crash";
    case Mix::kEverything: return "everything";
    default: return "?";
  }
}

sim::FaultPlan PlanFor(Mix mix, uint64_t seed, int num_nodes,
                       SimTime horizon) {
  sim::ChaosProfile profile;
  switch (mix) {
    case Mix::kLoss:
      profile.rates.loss = 0.05;
      break;
    case Mix::kDuplication:
      profile.rates.duplicate = 0.15;
      break;
    case Mix::kReordering:
      profile.rates.delay = 0.15;
      break;
    case Mix::kPartitions:
      profile.partitions = 3;
      break;
    case Mix::kCrashes:
      profile.crashes = 2;
      break;
    case Mix::kEverything:
      profile.rates.loss = 0.03;
      profile.rates.duplicate = 0.08;
      profile.rates.delay = 0.08;
      profile.partitions = 2;
      profile.crashes = 2;
      break;
    default:
      break;
  }
  return sim::FaultPlan::Chaos(seed, num_nodes, horizon, profile);
}

struct ChaosCase {
  uint64_t seed;
  Mix mix;
};

std::vector<ChaosCase> AllCases() {
  std::vector<ChaosCase> cases;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    for (int m = 0; m < static_cast<int>(Mix::kNumMixes); ++m) {
      cases.push_back({seed, static_cast<Mix>(m)});
    }
  }
  return cases;  // 24 combinations >= the 20 the soak promises
}

void RunChaos(Scheme scheme, const ChaosCase& cc) {
  const int num_nodes = scheme == Scheme::kFourV ? 1 : 3;
  const SimDuration load_window = 2 * kSecond;

  DatabaseOptions opt;
  opt.num_nodes = num_nodes;
  opt.scheme = scheme;
  opt.seed = cc.seed;
  opt.ava3.advancement_resend = 50 * kMillisecond;
  opt.base.txn_timeout = 2 * kSecond;
  opt.base.prepared_timeout = 6 * kSecond;
  opt.faults = PlanFor(cc.mix, cc.seed, num_nodes, load_window);

  const std::string label = std::string(db::SchemeName(scheme)) +
                            " mix=" + MixName(cc.mix) +
                            " seed=" + std::to_string(cc.seed);

  Database dbase(opt);
  wl::WorkloadSpec spec;
  spec.num_nodes = num_nodes;
  spec.items_per_node = 40;
  spec.zipf_theta = 0.6;
  spec.update_rate_per_sec = 200;
  spec.query_rate_per_sec = 60;
  spec.update_multinode_prob = num_nodes > 1 ? 0.5 : 0.0;
  spec.query_multinode_prob = spec.update_multinode_prob;
  spec.advancement_period = 150 * kMillisecond;
  spec.rotate_coordinator = true;
  spec.max_retries = 80;
  wl::WorkloadRunner runner(&dbase.simulator(), &dbase.engine(), spec,
                            cc.seed);
  const auto& initial = runner.SeedData();
  runner.Start(load_window);
  dbase.RunFor(load_window);
  dbase.RunFor(120 * kSecond);  // drain: timeouts, recovery, resends

  // The run must have done real work *and* the faults must have fired.
  // Message faults only touch remote sends, so they cannot fire in the
  // single-node (FourV) cluster — there, only the crash mixes bite.
  EXPECT_GT(dbase.metrics().update_commits(), 20u) << label;
  const sim::FaultInjector* inj = dbase.fault_injector();
  // A single-node partition mix degenerates to an inert plan (there is no
  // cut of one node), so no injector gets installed at all.
  ASSERT_EQ(inj != nullptr, opt.faults.Enabled()) << label;
  if (num_nodes > 1) {
    switch (cc.mix) {
      case Mix::kLoss:
        EXPECT_GT(inj->losses(), 0u) << label;
        break;
      case Mix::kDuplication:
        EXPECT_GT(inj->duplicates(), 0u) << label;
        EXPECT_GT(dbase.network().DuplicatedCount(), 0u) << label;
        break;
      case Mix::kReordering:
        EXPECT_GT(inj->delays(), 0u) << label;
        break;
      case Mix::kPartitions:
        EXPECT_GT(inj->partition_drops(), 0u) << label;
        break;
      case Mix::kCrashes:
      case Mix::kEverything:
        EXPECT_GT(dbase.metrics().crashes(), 0u) << label;
        break;
      default:
        break;
    }
  }
  if (cc.mix == Mix::kCrashes || cc.mix == Mix::kEverything) {
    EXPECT_GT(dbase.metrics().crashes(), 0u) << label;
  }

  // No leaked subtransaction state once everything drained.
  auto* base = dynamic_cast<db::EngineBase*>(&dbase.engine());
  ASSERT_NE(base, nullptr) << label;
  EXPECT_EQ(base->ActiveSubtxns(), 0) << label;

  // Serializability: value equivalence and MVSG acyclicity.
  verify::SerializabilityChecker values(initial);
  Status ok = values.Check(dbase.recorder().txns());
  EXPECT_TRUE(ok.ok()) << label << "\n" << ok.ToString();
  verify::MvsgChecker mvsg(initial);
  Status acyclic = mvsg.Check(dbase.recorder().txns());
  EXPECT_TRUE(acyclic.ok()) << label << "\n" << acyclic.ToString();

  // Section 6.2 invariants (version-bound, counter sanity) where they apply.
  if (auto* eng = dbase.ava3_engine()) {
    Status inv = eng->CheckInvariants();
    EXPECT_TRUE(inv.ok()) << label << "\n" << inv.ToString();
    EXPECT_EQ(eng->recovery_mismatches(), 0u) << label;
  }
}

class ChaosTest : public testing::TestWithParam<ChaosCase> {};

TEST_P(ChaosTest, Ava3SurvivesChaos) { RunChaos(Scheme::kAva3, GetParam()); }

TEST_P(ChaosTest, S2plSurvivesChaos) { RunChaos(Scheme::kS2pl, GetParam()); }

TEST_P(ChaosTest, MvuSurvivesChaos) { RunChaos(Scheme::kMvu, GetParam()); }

TEST_P(ChaosTest, FourVSurvivesChaos) {
  RunChaos(Scheme::kFourV, GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    SoakMatrix, ChaosTest, testing::ValuesIn(AllCases()),
    [](const testing::TestParamInfo<ChaosCase>& info) {
      return std::string(MixName(info.param.mix)) + "_seed" +
             std::to_string(info.param.seed);
    });

// ---------------------------------------------------------------------------
// Zero-fault bit-identity: installing an inert FaultPlan must not shift a
// single event or random draw relative to a run with no plan at all.

struct RunFingerprint {
  uint64_t commits;
  uint64_t queries;
  uint64_t aborts;
  uint64_t advancements;
  uint64_t events;
  size_t recorded;

  bool operator==(const RunFingerprint&) const = default;
};

RunFingerprint Fingerprint(const sim::FaultPlan& plan) {
  DatabaseOptions o;
  o.num_nodes = 3;
  o.seed = 4242;
  o.faults = plan;
  Database dbase(o);
  wl::WorkloadSpec spec;
  spec.num_nodes = 3;
  spec.items_per_node = 50;
  spec.zipf_theta = 0.8;
  spec.update_rate_per_sec = 300;
  spec.query_rate_per_sec = 100;
  spec.update_multinode_prob = 0.4;
  spec.advancement_period = 100 * kMillisecond;
  spec.rotate_coordinator = true;
  wl::WorkloadRunner runner(&dbase.simulator(), &dbase.engine(), spec, 4242);
  runner.SeedData();
  runner.Start(2 * kSecond);
  dbase.RunFor(2 * kSecond);
  dbase.RunFor(60 * kSecond);
  RunFingerprint fp;
  fp.commits = dbase.metrics().update_commits();
  fp.queries = dbase.metrics().query_commits();
  fp.aborts = dbase.metrics().aborts();
  fp.advancements = dbase.metrics().advancements();
  fp.events = dbase.simulator().events_executed();
  fp.recorded = dbase.recorder().txns().size();
  return fp;
}

TEST(ChaosDeterminismTest, InertPlanIsBitIdenticalToNoPlan) {
  sim::FaultPlan inert;  // all rates zero, no windows
  EXPECT_FALSE(inert.Enabled());
  RunFingerprint without = Fingerprint(sim::FaultPlan{});
  RunFingerprint with = Fingerprint(inert);
  EXPECT_EQ(without, with);
  EXPECT_GT(without.commits, 100u);
}

TEST(ChaosDeterminismTest, SameSeedSameChaos) {
  ChaosCase cc{3, Mix::kEverything};
  // The whole faulty run is reproducible: plan generation, injector draws,
  // crash scheduling, and the workload all key off the same seed.
  sim::FaultPlan a = PlanFor(cc.mix, cc.seed, 3, 2 * kSecond);
  sim::FaultPlan b = PlanFor(cc.mix, cc.seed, 3, 2 * kSecond);
  ASSERT_EQ(a.partitions.size(), b.partitions.size());
  for (size_t i = 0; i < a.partitions.size(); ++i) {
    EXPECT_EQ(a.partitions[i].start, b.partitions[i].start);
    EXPECT_EQ(a.partitions[i].side_a, b.partitions[i].side_a);
  }
  ASSERT_EQ(a.crashes.size(), b.crashes.size());
  for (size_t i = 0; i < a.crashes.size(); ++i) {
    EXPECT_EQ(a.crashes[i].node, b.crashes[i].node);
    EXPECT_EQ(a.crashes[i].crash_at, b.crashes[i].crash_at);
    EXPECT_EQ(a.crashes[i].recover_at, b.crashes[i].recover_at);
  }
}

}  // namespace
}  // namespace ava3
