// Crash and recovery tests. Lemma 6.1's crash argument: transaction
// counters are main-memory only, reset to zero on recovery, and this is
// safe because recovery aborts all in-flight transactions. Version numbers
// u/q/g are durable. Advancement survives participant crashes via resends
// and coordinator crashes via the watchdog's adoption of the round.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <thread>

#include "engine/database.h"
#include "verify/serializability.h"
#include "workload/runner.h"

namespace ava3 {
namespace {

using db::Database;
using db::DatabaseOptions;
using txn::Op;

DatabaseOptions Opts() {
  DatabaseOptions o;
  o.num_nodes = 3;
  o.net.jitter = 0;
  o.base.txn_timeout = 2 * kSecond;       // fast aborts in tests
  o.base.prepared_timeout = 6 * kSecond;  // still > txn_timeout
  return o;
}

TEST(CrashTest, CrashAbortsInFlightTransactionsAndResetsCounters) {
  for (auto rec :
       {wal::RecoveryScheme::kNoUndo, wal::RecoveryScheme::kInPlace}) {
    DatabaseOptions o = Opts();
    o.ava3.recovery = rec;
    Database dbase(o);
    auto* eng = dbase.ava3_engine();
    dbase.engine().LoadInitial(1, 1001, 500);
    db::TxnResult t;
    dbase.engine().Submit(
        dbase.NextTxnId(),
        txn::SingleNodeUpdate(1, {Op::Add(1001, 9), Op::Think(kSecond)}),
        [&t](const db::TxnResult& r) { t = r; });
    dbase.RunFor(10 * kMillisecond);
    EXPECT_EQ(eng->control(1).UpdateCount(1), 1);
    dbase.engine().CrashNode(1);
    // Counters reset; uncommitted effects gone from the durable store.
    EXPECT_EQ(eng->control(1).UpdateCount(1), 0);
    EXPECT_EQ(eng->store(1).ReadAtMost(1001, 100)->value, 500);
    dbase.engine().RecoverNode(1);
    dbase.RunFor(5 * kSecond);
    // The client-side outcome is an abort (the node lost the transaction).
    EXPECT_EQ(t.outcome, TxnOutcome::kAborted);
  }
}

TEST(CrashTest, DistributedTxnWithCrashedParticipantAbortsEverywhere) {
  Database dbase(Opts());
  auto* eng = dbase.ava3_engine();
  dbase.engine().LoadInitial(0, 1, 10);
  dbase.engine().LoadInitial(1, 1001, 20);
  db::TxnResult t;
  dbase.engine().Submit(
      dbase.NextTxnId(),
      txn::TreeTxn(TxnKind::kUpdate, 0, {Op::Add(1, 1)},
                   {{1, {Op::Think(kSecond), Op::Add(1001, 1)}}}),
      [&t](const db::TxnResult& r) { t = r; });
  dbase.RunFor(100 * kMillisecond);
  dbase.engine().CrashNode(1);
  dbase.RunFor(10 * kSecond);
  EXPECT_EQ(t.outcome, TxnOutcome::kAborted);
  EXPECT_EQ(t.status.code(), StatusCode::kTimedOut);
  // The root's locks were released; a new transaction can touch item 1.
  dbase.engine().RecoverNode(1);
  auto res = dbase.RunToCompletion(txn::SingleNodeUpdate(0, {Op::Add(1, 5)}));
  EXPECT_EQ(res.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(eng->store(0).ReadAtMost(1, 100)->value, 15);
}

TEST(CrashTest, PreparedParticipantBlocksUntilRootAnswersThenAborts) {
  // Classic 2PC: a prepared participant may not decide unilaterally. When
  // the root's node dies before deciding, the participant holds its locks
  // and periodically asks for the verdict; once the root's node recovers
  // (with no commit record for the transaction — presumed abort), the
  // participant aborts and releases.
  Database dbase(Opts());
  auto* eng = dbase.ava3_engine();
  dbase.engine().LoadInitial(0, 1, 10);
  dbase.engine().LoadInitial(1, 1001, 20);
  db::TxnResult t;
  dbase.engine().Submit(
      dbase.NextTxnId(),
      txn::TreeTxn(TxnKind::kUpdate, 0,
                   {Op::Add(1, 1), Op::Think(kSecond)},
                   {{1, {Op::Add(1001, 1)}}},
                   /*spawn_first=*/true),
      [&t](const db::TxnResult& r) { t = r; });
  // The child prepares quickly (holding its X lock) while the root thinks;
  // then the root's node dies before deciding.
  dbase.RunFor(50 * kMillisecond);
  dbase.engine().CrashNode(0);
  EXPECT_TRUE(eng->locks(1).Holds(1, 1001, lock::LockMode::kExclusive));
  // While the root stays down, the participant keeps waiting (2PC blocks).
  dbase.RunFor(10 * kSecond);
  EXPECT_TRUE(eng->locks(1).Holds(1, 1001, lock::LockMode::kExclusive));
  // Root's node recovers; the next decision request gets "no commit
  // record" back and the participant aborts.
  dbase.engine().RecoverNode(0);
  dbase.RunFor(10 * kSecond);
  EXPECT_FALSE(eng->locks(1).HasAnyLockOrWait(1));
  EXPECT_EQ(eng->store(1).ReadAtMost(1001, 100)->value, 20);
  EXPECT_EQ(eng->control(1).UpdateCount(1), 0);  // counter drained
}

TEST(CrashTest, ParticipantCrashDuringPhase1IsCoveredByResends) {
  DatabaseOptions o = Opts();
  o.ava3.advancement_resend = 50 * kMillisecond;
  Database dbase(o);
  auto* eng = dbase.ava3_engine();
  // Node 2 is down when the coordinator broadcasts advance-u.
  dbase.engine().CrashNode(2);
  eng->TriggerAdvancement(0);
  dbase.RunFor(100 * kMillisecond);
  EXPECT_TRUE(eng->AdvancementInProgress());  // stuck on node 2's ack
  EXPECT_EQ(eng->control(2).u(), 1);
  dbase.engine().RecoverNode(2);
  dbase.RunFor(kSecond);
  // The resend reached the recovered node; the round completed.
  EXPECT_FALSE(eng->AdvancementInProgress());
  EXPECT_EQ(dbase.metrics().advancements(), 1u);
  EXPECT_EQ(eng->control(2).u(), 2);
  EXPECT_EQ(eng->control(2).q(), 1);
  EXPECT_EQ(eng->control(2).g(), 0);
}

TEST(CrashTest, ParticipantCrashDuringPhase2IsCoveredByResends) {
  DatabaseOptions o = Opts();
  o.ava3.advancement_resend = 50 * kMillisecond;
  Database dbase(o);
  auto* eng = dbase.ava3_engine();
  eng->TriggerAdvancement(0);
  // Let Phase 1 complete (~1ms with 500us hops), then kill node 1 before
  // it can ack Phase 2.
  dbase.RunFor(1400);
  EXPECT_EQ(eng->control(1).u(), 2);
  dbase.engine().CrashNode(1);
  dbase.RunFor(200 * kMillisecond);
  EXPECT_TRUE(eng->AdvancementInProgress());
  dbase.engine().RecoverNode(1);
  dbase.RunFor(kSecond);
  EXPECT_FALSE(eng->AdvancementInProgress());
  EXPECT_EQ(eng->control(1).q(), 1);
  EXPECT_EQ(eng->control(1).g(), 0);
  EXPECT_TRUE(eng->CheckInvariants().ok());
}

TEST(CrashTest, WatchdogAdoptsRoundAfterCoordinatorCrash) {
  DatabaseOptions o = Opts();
  o.ava3.advancement_watchdog = true;
  o.ava3.watchdog_interval = 300 * kMillisecond;
  Database dbase(o);
  auto* eng = dbase.ava3_engine();
  eng->TriggerAdvancement(0);
  // Kill the coordinator right after Phase 1 completed at the participants
  // (they have u=2, q=0) but before Phase 2 finishes.
  dbase.RunFor(1100);
  ASSERT_EQ(eng->control(1).u(), 2);
  dbase.engine().CrashNode(0);
  // The remaining nodes are stuck half-advanced; the watchdog notices the
  // stable stuck state (two consecutive observations) and adopts the
  // round with the same newu.
  dbase.RunFor(5 * kSecond);
  EXPECT_EQ(eng->control(1).q(), 1);
  EXPECT_EQ(eng->control(2).q(), 1);
  EXPECT_EQ(eng->control(1).g(), 0);
  // The crashed ex-coordinator recovers and is caught up by resends of
  // whatever the adopting coordinator still retries, or at the next round.
  dbase.engine().RecoverNode(0);
  eng->TriggerAdvancement(1);
  dbase.RunFor(5 * kSecond);
  EXPECT_EQ(eng->control(0).u(), eng->control(1).u());
  EXPECT_EQ(eng->control(0).q(), eng->control(1).q());
  EXPECT_TRUE(eng->CheckInvariants().ok());
}

TEST(CrashTest, InDoubtTransactionCommitsAfterCrashRecovery) {
  // The participant prepares, the root decides commit, but the node
  // crashes before the commit message lands. The prepare record is
  // durable: after recovery the in-doubt transaction re-acquires its
  // locks, asks the root for the verdict, and installs its writes — a
  // committed transaction never loses a node's share of its effects.
  for (auto rec :
       {wal::RecoveryScheme::kNoUndo, wal::RecoveryScheme::kInPlace}) {
    DatabaseOptions o = Opts();
    o.ava3.recovery = rec;
    o.base.prepared_timeout = 500 * kMillisecond;  // quick inquiries
    Database dbase(o);
    auto* eng = dbase.ava3_engine();
    dbase.engine().LoadInitial(0, 1, 10);
    dbase.engine().LoadInitial(1, 1001, 20);
    db::TxnResult t;
    dbase.engine().Submit(
        dbase.NextTxnId(),
        txn::TreeTxn(TxnKind::kUpdate, 0,
                     {Op::Add(1, 1), Op::Think(5 * kMillisecond)},
                     {{1, {Op::Add(1001, 7)}}}),
        [&t](const db::TxnResult& r) { t = r; });
    // The child prepares (~1 ms); crash node 1 just before the commit
    // message can arrive (decision at ~5.5 ms, delivery at ~6 ms).
    dbase.RunFor(5300);
    ASSERT_EQ(t.outcome, TxnOutcome::kCommitted) << "root decided commit";
    dbase.engine().CrashNode(1);
    // The in-doubt transaction holds its version's counter: advancement
    // cannot declare version 1 stable while it is unresolved.
    EXPECT_EQ(eng->control(1).UpdateCount(1), 1);
    dbase.RunFor(kSecond);
    EXPECT_EQ(eng->store(1).ReadAtMost(1001, 100)->value, 20)
        << "no effects while in doubt";
    dbase.engine().RecoverNode(1);
    dbase.RunFor(5 * kSecond);
    // Resolution installed the committed write.
    EXPECT_EQ(eng->store(1).ReadAtMost(1001, 100)->value, 27)
        << wal::RecoverySchemeName(rec);
    EXPECT_EQ(eng->control(1).UpdateCount(1), 0);
    EXPECT_EQ(dynamic_cast<db::EngineBase*>(&dbase.engine())->ActiveSubtxns(),
              0);
    // The oracle sees the complete transaction.
    size_t recorded = 0;
    for (const auto& rec_txn : dbase.recorder().txns()) {
      if (rec_txn.kind == TxnKind::kUpdate) ++recorded;
    }
    EXPECT_EQ(recorded, dbase.metrics().update_commits());
  }
}

// ---------------------------------------------------------------------------
// Durable-log crash/recover/verify through the Database facade, on *both*
// runtimes: the crash windows travel in DatabaseOptions::faults, so the
// facade schedules them as simulator events (DES) or node-worker timers
// (threads) and each recovery replays checkpoint + redo tail and verifies
// it against the surviving committed state.
// ---------------------------------------------------------------------------

class RuntimeCrashRecoveryTest
    : public testing::TestWithParam<db::RuntimeKind> {};

TEST_P(RuntimeCrashRecoveryTest, DurableReplayRunsUnderCrashWindows) {
  const db::RuntimeKind kind = GetParam();
  const bool threads = kind == db::RuntimeKind::kThread;
  const int num_nodes = 3;
  // Simulated microseconds under the DES, wall-clock under threads.
  const SimDuration horizon = threads ? 1'200'000 : 3 * kSecond;

  DatabaseOptions o;
  o.num_nodes = num_nodes;
  o.runtime = kind;
  o.seed = 77;
  o.ava3.advancement_resend = 50 * kMillisecond;
  o.ava3.checkpoint_period = horizon / 10;  // several checkpoints per run
  o.base.txn_timeout = threads ? 300 * kMillisecond : 2 * kSecond;
  o.base.prepared_timeout = threads ? 900 * kMillisecond : 6 * kSecond;
  // One staggered crash/restart cycle per node, all inside the horizon.
  for (NodeId n = 0; n < num_nodes; ++n) {
    sim::CrashWindow w;
    w.node = n;
    w.crash_at = (n + 1) * horizon / 4;
    w.recover_at = w.crash_at + horizon / 12;
    o.faults.crashes.push_back(w);
  }

  Database dbase(o);
  auto* eng = dbase.ava3_engine();
  ASSERT_NE(eng, nullptr);
  std::map<ItemId, int64_t> initial;

  if (!threads) {
    wl::WorkloadSpec spec;
    spec.num_nodes = num_nodes;
    spec.items_per_node = 40;
    spec.update_rate_per_sec = 300;
    spec.query_rate_per_sec = 100;
    spec.update_multinode_prob = 0.4;
    spec.max_retries = 50;
    wl::WorkloadRunner runner(&dbase.simulator(), &dbase.engine(), spec,
                              o.seed);
    initial = runner.SeedData();
    runner.Start(horizon);
    dbase.RunFor(horizon);
    dbase.RunFor(120 * kSecond);  // drain: timeouts, in-doubt resolution
  } else {
    wl::WorkloadSpec spec;
    spec.num_nodes = num_nodes;
    spec.items_per_node = 40;
    spec.update_multinode_prob = 0.4;
    spec.query_multinode_prob = 0.4;
    for (NodeId n = 0; n < num_nodes; ++n) {
      for (int64_t i = 0; i < spec.items_per_node; ++i) {
        const ItemId item = spec.FirstItemOf(n) + i;
        dbase.LoadInitial(n, item, spec.initial_value);
        initial[item] = spec.initial_value;
      }
    }
    // Open-loop wall-clock submissions across the horizon. Submissions to
    // a crashed root are black-holed (their callback never fires), so the
    // drain below polls for stability instead of counting completions.
    std::atomic<int> completed{0};
    wl::ScriptGenerator gen(spec, Rng(o.seed));
    int submitted = 0;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::microseconds(horizon);
    while (std::chrono::steady_clock::now() < deadline) {
      for (int burst = 0; burst < 3; ++burst) {
        txn::TxnScript script =
            (submitted % 3 == 2) ? gen.NextQuery() : gen.NextUpdate();
        dbase.engine().Submit(
            dbase.NextTxnId(), std::move(script),
            [&completed](const db::TxnResult&) {
              completed.fetch_add(1, std::memory_order_relaxed);
            });
        ++submitted;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
    auto* base = dynamic_cast<db::EngineBase*>(&dbase.engine());
    ASSERT_NE(base, nullptr);
    bool quiesced = false;
    int last = -1;
    const auto drain_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    while (std::chrono::steady_clock::now() < drain_deadline) {
      bool all_up = true;
      for (NodeId n = 0; n < num_nodes; ++n) {
        all_up = all_up && dbase.runtime().IsNodeUp(n);
      }
      int active = -1;
      dbase.runtime().RunExclusive([&] { active = base->ActiveSubtxns(); });
      const int now_completed = completed.load();
      if (all_up && active == 0 && now_completed == last) {
        quiesced = true;
        break;
      }
      last = now_completed;
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
    EXPECT_TRUE(quiesced);
    dbase.Shutdown();
  }

  const char* label = db::RuntimeKindName(kind);
  // Every scheduled window fired: three crashes, three verified replays.
  EXPECT_EQ(dbase.metrics().crashes(), 3u) << label;
  EXPECT_EQ(eng->recoveries_replayed(), 3u) << label;
  EXPECT_EQ(eng->recovery_mismatches(), 0u) << label;
  uint64_t checkpoints = 0;
  for (NodeId n = 0; n < num_nodes; ++n) {
    checkpoints += eng->durable_log(n).checkpoints();
  }
  EXPECT_GT(checkpoints, 0u) << label;
  EXPECT_GT(dbase.metrics().update_commits(), 20u) << label;
  verify::SerializabilityChecker checker(initial);
  Status ok = checker.Check(dbase.recorder().txns());
  EXPECT_TRUE(ok.ok()) << label << "\n" << ok.ToString();
  EXPECT_TRUE(eng->CheckInvariants().ok()) << label;
}

INSTANTIATE_TEST_SUITE_P(
    BothRuntimes, RuntimeCrashRecoveryTest,
    testing::Values(db::RuntimeKind::kSim, db::RuntimeKind::kThread),
    [](const testing::TestParamInfo<db::RuntimeKind>& info) {
      return db::RuntimeKindName(info.param);
    });

TEST(CrashTest, RandomizedWorkloadSurvivesCrashesSerializably) {
  DatabaseOptions o = Opts();
  o.ava3.advancement_resend = 50 * kMillisecond;
  o.ava3.advancement_watchdog = true;
  o.ava3.watchdog_interval = 500 * kMillisecond;
  o.seed = 7;
  Database dbase(o);
  wl::WorkloadSpec spec;
  spec.num_nodes = 3;
  spec.items_per_node = 40;
  spec.update_rate_per_sec = 300;
  spec.query_rate_per_sec = 100;
  spec.advancement_period = 150 * kMillisecond;
  spec.max_retries = 50;
  wl::WorkloadRunner runner(&dbase.simulator(), &dbase.engine(), spec, 7);
  const auto& initial = runner.SeedData();
  runner.Start(4 * kSecond);
  // Crash and recover each node once, mid-run.
  for (NodeId n = 0; n < 3; ++n) {
    dbase.simulator().At((n + 1) * 800 * kMillisecond,
                         [&dbase, n]() { dbase.engine().CrashNode(n); });
    dbase.simulator().At((n + 1) * 800 * kMillisecond + 200 * kMillisecond,
                         [&dbase, n]() { dbase.engine().RecoverNode(n); });
  }
  dbase.RunFor(4 * kSecond);
  dbase.RunFor(120 * kSecond);  // drain + let the watchdog finish any round

  EXPECT_GT(runner.stats().committed_updates, 100u);
  verify::SerializabilityChecker checker(initial);
  Status ok = checker.Check(dbase.recorder().txns());
  EXPECT_TRUE(ok.ok()) << ok.ToString();
  auto* eng = dbase.ava3_engine();
  EXPECT_TRUE(eng->CheckInvariants().ok());
  EXPECT_FALSE(eng->AdvancementInProgress());
  // All nodes converged to one (u, q, g).
  for (NodeId n = 1; n < 3; ++n) {
    EXPECT_EQ(eng->control(n).u(), eng->control(0).u());
    EXPECT_EQ(eng->control(n).q(), eng->control(0).q());
  }
}

}  // namespace
}  // namespace ava3
