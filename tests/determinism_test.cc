// Bit-identity of the deterministic runtime (the refactor's contract).
//
// The runtime-abstraction refactor moved the whole protocol stack from
// direct sim::Simulator/sim::Network calls onto the rt::Runtime seam. Under
// SimRuntime that seam is pure delegation, so every run must remain
// bit-identical to the pre-refactor discrete-event simulator: the same
// events_executed, the same metrics JSON, the same trace byte stream.
//
// Two layers of defense:
//  - GoldenFingerprint: 16 configurations (4 engines x 2 seeds x
//    clean/chaos) pinned to fingerprints captured from the pre-refactor
//    build. Any schedule drift — an extra event, a reordered tie, a
//    perturbed RNG draw — changes at least one hash.
//  - SeedSweep: back-to-back runs of the same configuration (8 seeds x 4
//    engines) must agree exactly, proving the runtime carries no hidden
//    state across runs.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>

#include "engine/database.h"
#include "workload/runner.h"

namespace ava3 {
namespace {

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string TraceBytes(const TraceSink& sink) {
  std::string tr;
  for (const TraceEvent& ev : sink.events()) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%lld|%d|%d|%llu|%lld|%lld|%lld|%u|%u|%llu|%s\n",
                  static_cast<long long>(ev.time), static_cast<int>(ev.node),
                  static_cast<int>(ev.kind),
                  static_cast<unsigned long long>(ev.txn),
                  static_cast<long long>(ev.version),
                  static_cast<long long>(ev.a), static_cast<long long>(ev.b),
                  static_cast<unsigned>(ev.op),
                  static_cast<unsigned>(ev.phase),
                  static_cast<unsigned long long>(ev.span),
                  ev.detail.c_str());
    tr += buf;
  }
  return tr;
}

struct RunDigest {
  uint64_t events = 0;
  uint64_t metrics_hash = 0;
  uint64_t trace_hash = 0;
  std::string metrics_json;
};

/// One workload run with the exact configuration the pre-refactor
/// fingerprints were captured under.
RunDigest RunOnce(db::Scheme scheme, uint64_t seed, bool chaos,
                  bool enable_trace, SimDuration duration, SimDuration drain) {
  db::DatabaseOptions opt;
  opt.scheme = scheme;
  opt.seed = seed;
  opt.num_nodes = scheme == db::Scheme::kFourV ? 1 : 3;
  opt.enable_trace = enable_trace;
  if (chaos) {
    opt.faults.rates.loss = 0.02;
    opt.faults.rates.duplicate = 0.02;
    opt.faults.rates.delay = 0.05;
    opt.faults.rates.delay_min = 2000;
    opt.faults.rates.delay_max = 10000;
  }
  wl::WorkloadSpec spec;
  spec.num_nodes = opt.num_nodes;
  spec.update_rate_per_sec = 120;
  spec.query_rate_per_sec = 40;
  if (scheme != db::Scheme::kFourV) {
    spec.update_multinode_prob = 0.4;
    spec.query_multinode_prob = 0.4;
  }
  db::Database database(opt);
  wl::WorkloadRunner runner(&database.simulator(), &database.engine(), spec,
                            seed);
  runner.SeedData();
  runner.Start(duration);
  database.RunFor(duration);
  database.RunFor(drain);
  RunDigest d;
  d.events = database.simulator().events_executed();
  d.metrics_json = database.metrics().ToJson();
  d.metrics_hash = Fnv1a(d.metrics_json);
  d.trace_hash = Fnv1a(TraceBytes(database.trace()));
  return d;
}

// ---------------------------------------------------------------------------
// Golden fingerprints (captured from the pre-refactor build)
// ---------------------------------------------------------------------------

struct GoldenRow {
  const char* scheme;
  uint64_t seed;
  int chaos;
  uint64_t events;
  uint64_t metrics_hash;
  uint64_t trace_hash;
};

// 1 simulated second of load + 30 s drain, trace on, rates 120/40 per sec,
// 40% multinode (see RunOnce). Captured before the runtime seam existed.
constexpr GoldenRow kGolden[] = {
    {"ava3", 1, 0, 5338ULL, 0xda0cbab7a911a9bbULL, 0x43ec4bdf9db0c2e4ULL},
    {"ava3", 1, 1, 6183ULL, 0x408d413014f1958eULL, 0x14022403b2953701ULL},
    {"ava3", 7, 0, 5484ULL, 0xbdb5f26a310c951fULL, 0xfade8acb1e7ad6ffULL},
    {"ava3", 7, 1, 6443ULL, 0x5e93c9b498338955ULL, 0xecfbc2176bfdeb8fULL},
    {"s2pl", 1, 0, 5152ULL, 0x52630c1960a39d30ULL, 0x0ebeb5415b8c83ceULL},
    {"s2pl", 1, 1, 5302ULL, 0x6610df0039d8cc5dULL, 0xbdbd1e3245f71426ULL},
    {"s2pl", 7, 0, 5290ULL, 0x803e6d1ad6a56582ULL, 0x08e1f2d9cf50ba0cULL},
    {"s2pl", 7, 1, 5387ULL, 0xcf75c8482dc970adULL, 0x50163058a63ded5dULL},
    {"mvu", 1, 0, 5438ULL, 0x2948a47bf418d257ULL, 0x0eb15433b7f7c359ULL},
    {"mvu", 1, 1, 5548ULL, 0xecb061d19d3e9cd3ULL, 0x093cf4a2596892f1ULL},
    {"mvu", 7, 0, 5584ULL, 0x1f01a37d55249303ULL, 0x4ae2b9e33dc68582ULL},
    {"mvu", 7, 1, 5646ULL, 0x956d07d7ca0fff1cULL, 0xdc939795141483f2ULL},
    {"fourv", 1, 0, 4618ULL, 0xfb93e1bf451d9d1dULL, 0xccf6dd10f5acd8fdULL},
    {"fourv", 1, 1, 4618ULL, 0xfb93e1bf451d9d1dULL, 0xccf6dd10f5acd8fdULL},
    {"fourv", 7, 0, 4886ULL, 0xd02489b285780296ULL, 0x6bb159fa4fdda46bULL},
    {"fourv", 7, 1, 4886ULL, 0xd02489b285780296ULL, 0x6bb159fa4fdda46bULL},
};
// FOURV runs one node, self-sends are never faulted, and its fault RNG is
// never consulted — so its chaos rows equal its clean rows by construction.

db::Scheme SchemeByName(const std::string& name) {
  if (name == "ava3") return db::Scheme::kAva3;
  if (name == "s2pl") return db::Scheme::kS2pl;
  if (name == "mvu") return db::Scheme::kMvu;
  return db::Scheme::kFourV;
}

class GoldenFingerprint : public testing::TestWithParam<GoldenRow> {};

TEST_P(GoldenFingerprint, MatchesPreRefactorRun) {
  const GoldenRow& row = GetParam();
  RunDigest d = RunOnce(SchemeByName(row.scheme), row.seed, row.chaos != 0,
                        /*enable_trace=*/true, 1 * kSecond, 30 * kSecond);
  EXPECT_EQ(d.events, row.events) << "event count drifted";
  EXPECT_EQ(d.metrics_hash, row.metrics_hash) << "metrics drifted";
  EXPECT_EQ(d.trace_hash, row.trace_hash) << "trace byte stream drifted";
}

std::string GoldenName(const testing::TestParamInfo<GoldenRow>& info) {
  return std::string(info.param.scheme) + "_seed" +
         std::to_string(info.param.seed) +
         (info.param.chaos != 0 ? "_chaos" : "_clean");
}

INSTANTIATE_TEST_SUITE_P(AllEngines, GoldenFingerprint,
                         testing::ValuesIn(kGolden), GoldenName);

// ---------------------------------------------------------------------------
// Back-to-back seed sweep
// ---------------------------------------------------------------------------

struct SweepCase {
  db::Scheme scheme;
  uint64_t seed;
};

class SeedSweep : public testing::TestWithParam<SweepCase> {};

TEST_P(SeedSweep, BackToBackRunsAreBitIdentical) {
  const SweepCase& c = GetParam();
  // Lighter than the golden config (no trace, shorter drain): the point is
  // run-to-run identity, not a pinned absolute value.
  RunDigest a = RunOnce(c.scheme, c.seed, /*chaos=*/false,
                        /*enable_trace=*/false, kSecond / 2, 10 * kSecond);
  RunDigest b = RunOnce(c.scheme, c.seed, /*chaos=*/false,
                        /*enable_trace=*/false, kSecond / 2, 10 * kSecond);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
}

std::vector<SweepCase> SweepCases() {
  std::vector<SweepCase> cases;
  for (db::Scheme s : {db::Scheme::kAva3, db::Scheme::kS2pl, db::Scheme::kMvu,
                       db::Scheme::kFourV}) {
    for (uint64_t seed = 11; seed < 19; ++seed) cases.push_back({s, seed});
  }
  return cases;
}

std::string SweepName(const testing::TestParamInfo<SweepCase>& info) {
  return std::string(db::SchemeName(info.param.scheme)) + "_seed" +
         std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(EightSeedsFourEngines, SeedSweep,
                         testing::ValuesIn(SweepCases()), SweepName);

}  // namespace
}  // namespace ava3
