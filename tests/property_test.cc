// Randomized property tests: run a concurrent generated workload under a
// sweep of (scheme, recovery variant, optimization flags, skew, advancement
// period, seed) configurations and assert, on every run:
//   - the committed history passes the serializability oracle (reads see
//     exactly the committed state their version entitles them to),
//   - the final store state equals the replayed history,
//   - the Section 6.2 version invariants held,
//   - at most the scheme's version bound was ever live,
//   - the system quiesced (no leaked subtransactions or counters).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/database.h"
#include "verify/mvsg.h"
#include "verify/serializability.h"
#include "workload/runner.h"

namespace ava3 {
namespace {

using db::Database;
using db::DatabaseOptions;
using db::Scheme;

struct PropertyConfig {
  std::string label;
  Scheme scheme = Scheme::kAva3;
  wal::RecoveryScheme recovery = wal::RecoveryScheme::kNoUndo;
  int num_nodes = 3;
  double zipf_theta = 0.0;
  SimDuration advancement_period = 200 * kMillisecond;
  bool rotate_coordinator = false;
  bool eager_handoff = false;
  bool carry_version = false;
  bool root_only_counters = false;
  bool combined_counters = false;
  bool continuous = false;
  double delete_fraction = 0.0;
  double scan_fraction = 0.0;
  bool deep_trees = false;
  uint64_t seed = 1;
};

std::string PrintConfig(const testing::TestParamInfo<PropertyConfig>& info) {
  return info.param.label + "_seed" + std::to_string(info.param.seed);
}

class PropertyTest : public testing::TestWithParam<PropertyConfig> {};

TEST_P(PropertyTest, RandomWorkloadIsSerializable) {
  const PropertyConfig& cfg = GetParam();

  DatabaseOptions opt;
  opt.scheme = cfg.scheme;
  opt.num_nodes = cfg.num_nodes;
  opt.seed = cfg.seed;
  opt.ava3.recovery = cfg.recovery;
  opt.ava3.eager_counter_handoff = cfg.eager_handoff;
  opt.ava3.carry_version_in_txn = cfg.carry_version;
  opt.ava3.root_only_query_counters = cfg.root_only_counters;
  opt.ava3.combined_counters = cfg.combined_counters;
  opt.ava3.continuous_advancement = cfg.continuous;
  Database dbase(opt);

  wl::WorkloadSpec spec;
  spec.num_nodes = cfg.num_nodes;
  spec.items_per_node = 60;  // small: force real contention
  spec.zipf_theta = cfg.zipf_theta;
  spec.update_rate_per_sec = 400;
  spec.query_rate_per_sec = 120;
  spec.update_multinode_prob = 0.4;
  spec.query_multinode_prob = 0.4;
  spec.advancement_period = cfg.advancement_period;
  spec.rotate_coordinator = cfg.rotate_coordinator;
  spec.update_delete_fraction = cfg.delete_fraction;
  spec.query_scan_fraction = cfg.scan_fraction;
  spec.deep_trees = cfg.deep_trees;
  if (cfg.deep_trees) {
    spec.update_multinode_prob = 0.7;
    spec.update_fanout = 2;  // plus the random re-parenting below the root
  }

  wl::WorkloadRunner runner(&dbase.simulator(), &dbase.engine(), spec,
                            cfg.seed);
  const auto& initial = runner.SeedData();
  runner.Start(4 * kSecond);
  dbase.RunFor(4 * kSecond);
  // Drain: stop arrivals, let in-flight transactions and advancement finish.
  dbase.RunFor(60 * kSecond);

  // The run actually exercised the machinery.
  EXPECT_GT(runner.stats().committed_updates, 200u) << "too few commits";
  EXPECT_GT(runner.stats().committed_queries, 50u);
  EXPECT_EQ(runner.stats().gave_up, 0u);

  // Everything quiesced.
  auto* base = dynamic_cast<db::EngineBase*>(&dbase.engine());
  ASSERT_NE(base, nullptr);
  EXPECT_EQ(base->ActiveSubtxns(), 0);

  // Serializability oracle #1: every read returned exactly the committed
  // state its version entitles it to.
  verify::SerializabilityChecker checker(initial);
  Status ok = checker.Check(dbase.recorder().txns());
  EXPECT_TRUE(ok.ok()) << ok.ToString();

  // Serializability oracle #2: the multiversion serialization graph of the
  // history is acyclic (one-copy serializability).
  verify::MvsgChecker mvsg(initial);
  Status acyclic = mvsg.Check(dbase.recorder().txns());
  EXPECT_TRUE(acyclic.ok()) << acyclic.ToString();

  std::vector<const store::VersionedStore*> stores;
  for (int n = 0; n < cfg.num_nodes; ++n) stores.push_back(&base->store(n));
  Status final_ok = checker.CheckFinalState(dbase.recorder().txns(), stores);
  EXPECT_TRUE(final_ok.ok()) << final_ok.ToString();

  // Scheme-specific invariants.
  if (auto* eng = dbase.ava3_engine()) {
    Status inv = eng->CheckInvariants();
    EXPECT_TRUE(inv.ok()) << inv.ToString();
    // Advancement actually ran and completed.
    if (cfg.advancement_period > 0) {
      EXPECT_GT(dbase.metrics().advancements(), 3u);
      EXPECT_FALSE(eng->AdvancementInProgress());
    }
    // All counters drained.
    for (int n = 0; n < cfg.num_nodes; ++n) {
      const auto& cs = eng->control(n);
      EXPECT_EQ(cs.UpdateCount(cs.u()), 0) << "node " << n;
      EXPECT_EQ(cs.QueryCount(cs.q()), 0) << "node " << n;
    }
  }
}

std::vector<PropertyConfig> MakeConfigs() {
  std::vector<PropertyConfig> out;
  auto push = [&out](PropertyConfig c) {
    for (uint64_t seed : {11ull, 23ull, 47ull, 89ull, 131ull}) {
      c.seed = seed;
      out.push_back(c);
    }
  };
  {
    PropertyConfig c;
    c.label = "ava3_noundo";
    push(c);
  }
  {
    PropertyConfig c;
    c.label = "ava3_inplace";
    c.recovery = wal::RecoveryScheme::kInPlace;
    push(c);
  }
  {
    PropertyConfig c;
    c.label = "ava3_zipf";
    c.zipf_theta = 0.9;
    push(c);
  }
  {
    PropertyConfig c;
    c.label = "ava3_multicoord";
    c.rotate_coordinator = true;
    c.advancement_period = 100 * kMillisecond;
    push(c);
  }
  {
    PropertyConfig c;
    c.label = "ava3_opts";  // O1+O2+O3 + Section 8 eager handoff
    c.eager_handoff = true;
    c.carry_version = true;
    c.root_only_counters = true;
    c.combined_counters = true;
    push(c);
  }
  {
    PropertyConfig c;
    c.label = "ava3_continuous";
    c.continuous = true;
    c.advancement_period = 50 * kMillisecond;
    push(c);
  }
  {
    PropertyConfig c;
    c.label = "ava3_onenode";  // centralized case (paper Section 7)
    c.num_nodes = 1;
    push(c);
  }
  {
    PropertyConfig c;
    c.label = "ava3_deletes";
    c.delete_fraction = 0.15;
    push(c);
  }
  {
    PropertyConfig c;
    c.label = "ava3_scans";
    c.scan_fraction = 0.4;
    push(c);
  }
  {
    PropertyConfig c;
    c.label = "ava3_deep_trees";
    c.deep_trees = true;
    push(c);
  }
  {
    PropertyConfig c;
    c.label = "ava3_everything";  // deletes + scans + deep trees + opts
    c.delete_fraction = 0.1;
    c.scan_fraction = 0.3;
    c.deep_trees = true;
    c.eager_handoff = true;
    c.carry_version = true;
    c.root_only_counters = true;
    c.combined_counters = true;
    c.recovery = wal::RecoveryScheme::kInPlace;
    c.zipf_theta = 0.8;
    c.rotate_coordinator = true;
    push(c);
  }
  {
    PropertyConfig c;
    c.label = "fourv";  // centralized, like the schemes it models
    c.scheme = Scheme::kFourV;
    c.num_nodes = 1;
    push(c);
  }
  {
    PropertyConfig c;
    c.label = "s2pl_deletes";
    c.scheme = Scheme::kS2pl;
    c.advancement_period = 0;
    c.delete_fraction = 0.15;
    push(c);
  }
  {
    PropertyConfig c;
    c.label = "mvu_deletes_scans";
    c.scheme = Scheme::kMvu;
    c.advancement_period = 0;
    c.delete_fraction = 0.15;
    c.scan_fraction = 0.3;
    push(c);
  }
  {
    PropertyConfig c;
    c.label = "s2pl";
    c.scheme = Scheme::kS2pl;
    c.advancement_period = 0;
    push(c);
  }
  {
    PropertyConfig c;
    c.label = "mvu";
    c.scheme = Scheme::kMvu;
    c.advancement_period = 0;
    push(c);
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PropertyTest, testing::ValuesIn(MakeConfigs()),
                         PrintConfig);

}  // namespace
}  // namespace ava3
