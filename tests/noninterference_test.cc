// Non-interference tests (the paper's core requirement and Theorem 6.3):
// (a) queries are never delayed by updates or version advancement,
// (b) updates are never blocked by queries or advancement (only the cost
//     of moveToFuture), and
// (c) advancement is starvation-free under continuous new arrivals.
// Plus the contrast: under S2PL-R the same workload *does* interfere.

#include <gtest/gtest.h>

#include "engine/database.h"
#include "workload/runner.h"

namespace ava3 {
namespace {

using db::Database;
using db::DatabaseOptions;
using db::Scheme;
using txn::Op;

TEST(NonInterferenceTest, QueryLatencyIsIndependentOfUpdateLoad) {
  // The same query stream with and without a heavy update stream: under
  // AVA3 the query latency distribution must be identical up to noise
  // (queries take no locks and never wait).
  auto run = [](double update_rate) {
    DatabaseOptions o;
    o.num_nodes = 3;
    o.seed = 5;
    auto dbase = std::make_unique<Database>(o);
    wl::WorkloadSpec spec;
    spec.num_nodes = 3;
    spec.items_per_node = 50;
    spec.update_rate_per_sec = update_rate;
    spec.query_rate_per_sec = 100;
    spec.advancement_period = 200 * kMillisecond;
    wl::WorkloadRunner runner(&dbase->simulator(), &dbase->engine(), spec, 5);
    runner.SeedData();
    runner.Start(3 * kSecond);
    dbase->RunFor(3 * kSecond);
    dbase->RunFor(30 * kSecond);
    return dbase->metrics().query_latency().Percentile(99);
  };
  const int64_t idle_p99 = run(0.0);
  const int64_t busy_p99 = run(800.0);
  // Identical shapes: query scripts and network are seeded identically;
  // only the update load differs. Allow tiny jitter from arrival draws.
  EXPECT_LT(busy_p99, idle_p99 * 1.25 + 1000)
      << "queries were delayed by update load";
}

TEST(NonInterferenceTest, S2plQueriesAreDelayedByUpdateLoad) {
  // The same experiment under the locking baseline shows interference.
  auto run = [](double update_rate) {
    DatabaseOptions o;
    o.num_nodes = 3;
    o.scheme = Scheme::kS2pl;
    o.seed = 5;
    auto dbase = std::make_unique<Database>(o);
    wl::WorkloadSpec spec;
    spec.num_nodes = 3;
    spec.items_per_node = 30;  // contended
    spec.zipf_theta = 0.9;
    spec.update_rate_per_sec = update_rate;
    spec.query_rate_per_sec = 60;
    spec.query_ops_min = 10;
    spec.query_ops_max = 20;
    spec.update_think = 2 * kMillisecond;  // updates hold locks a while
    spec.advancement_period = 0;
    wl::WorkloadRunner runner(&dbase->simulator(), &dbase->engine(), spec, 5);
    runner.SeedData();
    runner.Start(3 * kSecond);
    dbase->RunFor(3 * kSecond);
    dbase->RunFor(60 * kSecond);
    return dbase->metrics().query_latency().Percentile(99);
  };
  const int64_t idle_p99 = run(0.0);
  const int64_t busy_p99 = run(400.0);
  EXPECT_GT(busy_p99, idle_p99 * 2) << "expected lock interference";
}

TEST(NonInterferenceTest, LongQueryDoesNotBlockUpdates) {
  // A decision-support query scanning for a long time; updates keep
  // committing at full speed under AVA3.
  DatabaseOptions o;
  o.num_nodes = 1;
  Database dbase(o);
  dbase.engine().LoadInitial(0, 1, 10);
  db::TxnResult qres;
  dbase.engine().Submit(
      dbase.NextTxnId(),
      txn::TxnScript{
          TxnKind::kQuery,
          {txn::SubtxnSpec{0, -1, {Op::Think(kSecond), Op::Read(1)}}}},
      [&qres](const db::TxnResult& r) { qres = r; });
  dbase.RunFor(kMillisecond);
  // 50 sequential updates to the same item the query will read.
  int committed = 0;
  for (int i = 0; i < 50; ++i) {
    auto res = dbase.RunToCompletion(txn::SingleNodeUpdate(0, {Op::Add(1, 1)}));
    if (res.outcome == TxnOutcome::kCommitted) ++committed;
  }
  EXPECT_EQ(committed, 50);
  dbase.RunFor(2 * kSecond);
  EXPECT_EQ(qres.outcome, TxnOutcome::kCommitted);
  ASSERT_EQ(qres.reads.size(), 1u);
  EXPECT_EQ(qres.reads[0].value, 10);  // its own stale snapshot
}

TEST(NonInterferenceTest, S2plLongQueryBlocksUpdates) {
  DatabaseOptions o;
  o.num_nodes = 1;
  o.scheme = Scheme::kS2pl;
  Database dbase(o);
  dbase.engine().LoadInitial(0, 1, 10);
  db::TxnResult qres;
  dbase.engine().Submit(
      dbase.NextTxnId(),
      txn::TxnScript{
          TxnKind::kQuery,
          {txn::SubtxnSpec{0, -1, {Op::Read(1), Op::Think(kSecond)}}}},
      [&qres](const db::TxnResult& r) { qres = r; });
  dbase.RunFor(kMillisecond);
  // The update needs the X lock on item 1 and stalls behind the query's
  // S lock until the query finishes — ~1s of interference that AVA3's
  // lock-free queries never cause (see LongQueryDoesNotBlockUpdates).
  db::TxnResult ures;
  dbase.engine().Submit(dbase.NextTxnId(),
                        txn::SingleNodeUpdate(0, {Op::Add(1, 1)}),
                        [&ures](const db::TxnResult& r) { ures = r; });
  dbase.RunFor(500 * kMillisecond);
  EXPECT_EQ(ures.id, kInvalidTxn) << "update should still be blocked";
  dbase.RunFor(5 * kSecond);
  EXPECT_EQ(qres.outcome, TxnOutcome::kCommitted);
  ASSERT_EQ(ures.outcome, TxnOutcome::kCommitted);
  EXPECT_GE(ures.finish_time - ures.submit_time, 900 * kMillisecond);
}

TEST(NonInterferenceTest, AdvancementIsStarvationFreeUnderLoad) {
  // Theorem 6.3(c): new transactions keep arriving, yet every triggered
  // advancement completes (new arrivals use the new version, so the old
  // counters drain).
  DatabaseOptions o;
  o.num_nodes = 3;
  o.seed = 13;
  Database dbase(o);
  wl::WorkloadSpec spec;
  spec.num_nodes = 3;
  spec.items_per_node = 100;
  spec.update_rate_per_sec = 600;
  spec.query_rate_per_sec = 200;
  spec.advancement_period = 100 * kMillisecond;
  wl::WorkloadRunner runner(&dbase.simulator(), &dbase.engine(), spec, 13);
  runner.SeedData();
  runner.Start(3 * kSecond);
  dbase.RunFor(3 * kSecond);
  dbase.RunFor(30 * kSecond);
  // ~30 triggers at 100ms; every completed round is counted. Allow
  // overlap losses but require sustained progress.
  EXPECT_GE(dbase.metrics().advancements(), 10u);
  EXPECT_FALSE(dbase.ava3_engine()->AdvancementInProgress());
}

TEST(NonInterferenceTest, UpdatesNeverWaitForAdvancement) {
  // Updates submitted during every phase of an advancement commit without
  // ever being blocked by it (their only extra cost is moveToFuture).
  DatabaseOptions o;
  o.num_nodes = 3;
  o.net.jitter = 0;
  Database dbase(o);
  auto* eng = dbase.ava3_engine();
  dbase.engine().LoadInitial(0, 1, 10);
  std::vector<db::TxnResult> results(8);
  // Fire updates every 300us across the advancement's lifetime (an idle
  // advancement completes in ~2.5ms with 500us hops).
  for (int i = 0; i < 8; ++i) {
    dbase.simulator().At(100 + i * 300, [&dbase, &results, i]() {
      dbase.engine().Submit(dbase.NextTxnId(),
                            txn::SingleNodeUpdate(0, {Op::Add(1, 1)}),
                            [&results, i](const db::TxnResult& r) {
                              results[i] = r;
                            });
    });
  }
  dbase.simulator().At(200, [eng]() { eng->TriggerAdvancement(2); });
  dbase.RunFor(10 * kSecond);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(results[i].outcome, TxnOutcome::kCommitted) << i;
    // Nothing waited beyond lock queues: end-to-end latency stays within
    // loopback + a couple of op costs.
    EXPECT_LT(results[i].finish_time - results[i].submit_time,
              5 * kMillisecond)
        << i;
  }
  EXPECT_EQ(eng->store(0).ReadAtMost(1, 1000)->value, 18);
}

}  // namespace
}  // namespace ava3
