// Credit-card audit: a long-running decision-support scan concurrent with
// OLTP traffic — the workload that motivates the paper's non-interference
// requirement. The same scenario runs under AVA3 and under the read-locking
// S2PL baseline; compare what the audit does to update throughput.
//
// Run: ./build/examples/credit_audit

#include <cstdio>
#include <vector>

#include "engine/database.h"
#include "workload/runner.h"

using namespace ava3;
using txn::Op;

namespace {

struct Outcome {
  uint64_t committed_updates = 0;
  int64_t update_p99 = 0;
  bool audit_done = false;
  int64_t audit_sum = 0;
};

Outcome Run(db::Scheme scheme) {
  db::DatabaseOptions options;
  options.num_nodes = 2;
  options.scheme = scheme;
  options.seed = 7;
  db::Database database(options);

  constexpr int64_t kAccounts = 200;
  for (ItemId a = 0; a < kAccounts; ++a) {
    database.engine().LoadInitial(0, a, 100);
  }

  // The audit: one read-only transaction scanning every account at node 0,
  // paced like a real report generator (~0.5 ms per account).
  std::vector<Op> audit_ops;
  for (ItemId a = 0; a < kAccounts; ++a) {
    audit_ops.push_back(Op::Read(a));
    audit_ops.push_back(Op::Think(500));
  }
  db::TxnResult audit;
  database.engine().Submit(
      database.NextTxnId(),
      txn::TxnScript{TxnKind::kQuery,
                     {txn::SubtxnSpec{0, -1, std::move(audit_ops)}}},
      [&audit](const db::TxnResult& r) { audit = r; });

  // OLTP: card transactions against the same accounts.
  wl::WorkloadSpec spec;
  spec.num_nodes = 2;
  spec.items_per_node = kAccounts;  // node 0's range collides with the audit
  spec.zipf_theta = 0.6;
  spec.update_rate_per_sec = 500;
  spec.query_rate_per_sec = 0;
  spec.advancement_period =
      scheme == db::Scheme::kAva3 ? 100 * kMillisecond : 0;
  wl::WorkloadRunner runner(&database.simulator(), &database.engine(), spec,
                            7);
  runner.Start(2 * kSecond);
  database.RunFor(2 * kSecond);
  database.RunFor(60 * kSecond);

  Outcome out;
  out.committed_updates = runner.stats().committed_updates;
  out.update_p99 = database.metrics().update_latency().Percentile(99);
  out.audit_done = audit.outcome == TxnOutcome::kCommitted;
  for (const auto& r : audit.reads) out.audit_sum += r.value;
  return out;
}

}  // namespace

int main() {
  std::printf("A 100 ms-per-account audit scans 200 accounts while card\n"
              "transactions hammer the same accounts for 2 simulated "
              "seconds.\n\n");
  std::printf("%-8s %18s %16s %12s %14s\n", "scheme", "updates committed",
              "update p99 (us)", "audit done", "audit total");
  for (db::Scheme scheme : {db::Scheme::kAva3, db::Scheme::kS2pl}) {
    Outcome o = Run(scheme);
    std::printf("%-8s %18llu %16lld %12s %14lld\n", db::SchemeName(scheme),
                static_cast<unsigned long long>(o.committed_updates),
                static_cast<long long>(o.update_p99),
                o.audit_done ? "yes" : "no",
                static_cast<long long>(o.audit_sum));
  }
  std::printf(
      "\nUnder AVA3 the audit reads a consistent version-0 snapshot (total"
      "\n= 200 x 100) without ever blocking an update. Under S2PL-R the"
      "\naudit's shared locks stall conflicting updates behind a scan that"
      "\nholds each lock to completion — tail latency explodes, and the"
      "\naudit itself reads a smeared, non-snapshot total.\n");
  return 0;
}
