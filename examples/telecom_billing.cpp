// Telecom billing: the paper's motivating application (Section 1.1).
//
// A 4-node distributed database records call activity (continuous small
// update transactions, often spanning the caller's and callee's home
// nodes) while customer-service queries read consistent account snapshots.
// Instead of the manual "flush updates to the read-only copy and block
// access" procedure, AVA3 advances versions every simulated hour scaled
// down to 250 ms — with zero interference.
//
// Run: ./build/examples/telecom_billing

#include <cstdio>

#include "engine/database.h"
#include "verify/serializability.h"
#include "workload/runner.h"

using namespace ava3;

int main() {
  db::DatabaseOptions options;
  options.num_nodes = 4;
  options.seed = 2026;
  db::Database database(options);

  wl::WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.items_per_node = 500;      // customer accounts per region
  spec.zipf_theta = 0.8;          // some customers call a lot
  spec.update_ops_min = 2;        // a call record touches 2-4 accounts
  spec.update_ops_max = 4;
  spec.update_multinode_prob = 0.5;  // cross-region calls
  spec.update_rate_per_sec = 800;
  spec.query_ops_min = 8;         // customer-inquiry scans
  spec.query_ops_max = 24;
  spec.query_rate_per_sec = 120;
  spec.advancement_period = 250 * kMillisecond;  // the "hourly flush"
  spec.rotate_coordinator = true;

  wl::WorkloadRunner runner(&database.simulator(), &database.engine(), spec,
                            options.seed);
  const auto& initial = runner.SeedData();

  std::printf("running 5 simulated seconds of call traffic on 4 nodes...\n");
  runner.Start(5 * kSecond);
  database.RunFor(5 * kSecond);
  database.RunFor(30 * kSecond);  // drain

  const auto& m = database.metrics();
  const auto& s = runner.stats();
  std::printf("\n-- throughput --\n");
  std::printf("call-record txns committed : %llu (%.0f/s)\n",
              static_cast<unsigned long long>(s.committed_updates),
              s.committed_updates / 5.0);
  std::printf("customer queries committed : %llu (%.0f/s)\n",
              static_cast<unsigned long long>(s.committed_queries),
              s.committed_queries / 5.0);
  std::printf("retries (deadlock victims) : %llu, gave up: %llu\n",
              static_cast<unsigned long long>(s.retries),
              static_cast<unsigned long long>(s.gave_up));

  std::printf("\n-- latency (simulated us) --\n");
  std::printf("updates : %s\n", m.update_latency().Summary().c_str());
  std::printf("queries : %s\n", m.query_latency().Summary().c_str());

  std::printf("\n-- version management --\n");
  std::printf("advancements completed : %llu (every %lld ms)\n",
              static_cast<unsigned long long>(m.advancements()),
              static_cast<long long>(spec.advancement_period / kMillisecond));
  std::printf("moveToFutures          : %llu (%.2f%% of commits)\n",
              static_cast<unsigned long long>(m.mtf_count()),
              100.0 * m.mtf_count() /
                  (m.update_commits() > 0 ? m.update_commits() : 1));
  std::printf("query snapshot age     : %s\n", m.staleness().Summary().c_str());
  auto* eng = database.ava3_engine();
  int max_versions = 0;
  for (int n = 0; n < 4; ++n) {
    max_versions =
        std::max(max_versions, eng->store(n).MaxLiveVersionsObserved());
  }
  std::printf("max live versions/item : %d (paper bound: 3)\n", max_versions);

  // The run doubles as a correctness demonstration.
  verify::SerializabilityChecker checker(initial);
  Status ok = checker.Check(database.recorder().txns());
  Status inv = eng->CheckInvariants();
  std::printf("\nserializability oracle : %s\n", ok.ToString().c_str());
  std::printf("Section 6.2 invariants : %s\n", inv.ToString().c_str());
  return ok.ok() && inv.ok() ? 0 : 1;
}
