// ava3_sim: a command-line driver for the distributed database.
//
// Runs a configurable workload under any of the four concurrency-control
// schemes and prints a full metrics report, with optional serializability
// verification and protocol tracing. `--runtime=sim` (the default) drives
// the deterministic discrete-event simulator; `--runtime=thread` drives
// the same engine on real OS threads with wall-clock gauges and
// ring-buffered tracing.
//
// Examples:
//   ./build/examples/ava3_sim --scheme=ava3 --nodes=4 --seconds=5
//   ./build/examples/ava3_sim --scheme=s2pl --update-rate=800 --zipf=0.9
//   ./build/examples/ava3_sim --scheme=ava3 --advance-ms=50 --verify
//   ./build/examples/ava3_sim --runtime=thread --seconds=3 --sample-ms=5
//       --openmetrics-out=metrics.prom
//   ./build/examples/ava3_sim --help

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "common/openmetrics.h"
#include "common/trace_export.h"
#include "engine/database.h"
#include "sim/fault_injector.h"
#include "verify/serializability.h"
#include "workload/runner.h"

using namespace ava3;

namespace {

struct Flags {
  std::string scheme = "ava3";
  std::string runtime = "sim";
  int nodes = 3;
  int64_t items = 500;
  double zipf = 0.5;
  double update_rate = 400;
  double query_rate = 100;
  double delete_fraction = 0.0;
  double scan_fraction = 0.2;
  int seconds = 5;
  int64_t advance_ms = 250;
  uint64_t seed = 42;
  double loss = 0.0;
  double dup = 0.0;
  double delay = 0.0;
  int partitions = 0;
  int crashes = 0;
  bool in_place = false;
  bool eager = false;
  bool continuous = false;
  bool verify = false;
  bool trace = false;
  std::string trace_out;
  std::string metrics_out;
  std::string openmetrics_out;
  int64_t sample_ms = 0;
  bool help = false;
};

bool ParseFlag(const char* arg, const char* name, const char** value) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return false;
  if (arg[n] == '=') {
    *value = arg + n + 1;
    return true;
  }
  if (arg[n] == '\0') {
    *value = nullptr;  // boolean form
    return true;
  }
  return false;
}

void Usage() {
  std::printf(
      "ava3_sim — drive the distributed three-version database\n\n"
      "  --scheme=ava3|s2pl|mvu|fourv   concurrency control (default ava3)\n"
      "  --runtime=sim|thread           deterministic simulator (default)\n"
      "                                 or real worker threads (wall clock)\n"
      "  --nodes=N                      sites (default 3; fourv needs 1)\n"
      "  --items=N                      items per node (default 500)\n"
      "  --zipf=T                       access skew 0..0.99 (default 0.5)\n"
      "  --update-rate=R --query-rate=R arrivals per second (thread mode\n"
      "                                 uses only their ratio as query mix)\n"
      "  --delete-fraction=F            fraction of writes that delete\n"
      "  --scan-fraction=F              fraction of query ops that scan\n"
      "  --seconds=S                    workload duration (default 5)\n"
      "  --advance-ms=MS                advancement period, 0=off\n"
      "  --seed=N                       deterministic seed (default 42)\n"
      "  --loss=P --dup=P --delay=P     fault rates 0..1 on remote sends\n"
      "  --partitions=N --crashes=N     seeded windows (sim runtime only)\n"
      "  --in-place                     in-place recovery (moveToFuture "
      "scans the log)\n"
      "  --eager                        Section-8 eager counter handoff\n"
      "  --continuous                   Section-8 continuous advancement\n"
      "  --verify                       run the serializability oracle\n"
      "  --trace                        print the protocol trace\n"
      "  --trace-out=FILE               write Chrome trace JSON (load in\n"
      "                                 Perfetto / chrome://tracing)\n"
      "  --metrics-out=FILE             write the metrics report as JSON\n"
      "  --openmetrics-out=FILE         write the metrics report (plus any\n"
      "                                 sampled gauges) as OpenMetrics /\n"
      "                                 Prometheus text exposition format\n"
      "  --sample-ms=MS                 sample per-node gauges every MS\n"
      "                                 (simulated time on the simulator,\n"
      "                                 wall clock on threads; 0=off)\n");
}

Flags Parse(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (ParseFlag(argv[i], "--scheme", &v) && v) {
      f.scheme = v;
    } else if (ParseFlag(argv[i], "--runtime", &v) && v) {
      f.runtime = v;
    } else if (ParseFlag(argv[i], "--nodes", &v) && v) {
      f.nodes = std::atoi(v);
    } else if (ParseFlag(argv[i], "--items", &v) && v) {
      f.items = std::atoll(v);
    } else if (ParseFlag(argv[i], "--zipf", &v) && v) {
      f.zipf = std::atof(v);
    } else if (ParseFlag(argv[i], "--update-rate", &v) && v) {
      f.update_rate = std::atof(v);
    } else if (ParseFlag(argv[i], "--query-rate", &v) && v) {
      f.query_rate = std::atof(v);
    } else if (ParseFlag(argv[i], "--delete-fraction", &v) && v) {
      f.delete_fraction = std::atof(v);
    } else if (ParseFlag(argv[i], "--scan-fraction", &v) && v) {
      f.scan_fraction = std::atof(v);
    } else if (ParseFlag(argv[i], "--seconds", &v) && v) {
      f.seconds = std::atoi(v);
    } else if (ParseFlag(argv[i], "--advance-ms", &v) && v) {
      f.advance_ms = std::atoll(v);
    } else if (ParseFlag(argv[i], "--seed", &v) && v) {
      f.seed = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--loss", &v) && v) {
      f.loss = std::atof(v);
    } else if (ParseFlag(argv[i], "--dup", &v) && v) {
      f.dup = std::atof(v);
    } else if (ParseFlag(argv[i], "--delay", &v) && v) {
      f.delay = std::atof(v);
    } else if (ParseFlag(argv[i], "--partitions", &v) && v) {
      f.partitions = std::atoi(v);
    } else if (ParseFlag(argv[i], "--crashes", &v) && v) {
      f.crashes = std::atoi(v);
    } else if (ParseFlag(argv[i], "--in-place", &v)) {
      f.in_place = true;
    } else if (ParseFlag(argv[i], "--eager", &v)) {
      f.eager = true;
    } else if (ParseFlag(argv[i], "--continuous", &v)) {
      f.continuous = true;
    } else if (ParseFlag(argv[i], "--verify", &v)) {
      f.verify = true;
    } else if (ParseFlag(argv[i], "--trace-out", &v) && v) {
      f.trace_out = v;
    } else if (ParseFlag(argv[i], "--trace", &v)) {
      f.trace = true;
    } else if (ParseFlag(argv[i], "--metrics-out", &v) && v) {
      f.metrics_out = v;
    } else if (ParseFlag(argv[i], "--openmetrics-out", &v) && v) {
      f.openmetrics_out = v;
    } else if (ParseFlag(argv[i], "--sample-ms", &v) && v) {
      f.sample_ms = std::atoll(v);
    } else if (ParseFlag(argv[i], "--help", &v)) {
      f.help = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      f.help = true;
    }
  }
  return f;
}

/// What the thread-runtime closed-loop driver observed.
struct ThreadDriveStats {
  double wall_seconds = 0;
  uint64_t submitted = 0;
  uint64_t committed_updates = 0;
  uint64_t committed_queries = 0;
  uint64_t aborted = 0;
};

/// Drives the thread-runtime database for `f.seconds` of wall-clock time
/// with a bounded in-flight window, then drains and joins the workers.
/// The update/query mix is the flag rates' ratio (real threads run as
/// fast as the engine allows; open-loop Poisson arrivals belong to the
/// simulator's workload runner).
ThreadDriveStats DriveThreadRuntime(db::Database& database,
                                    const wl::WorkloadSpec& spec,
                                    const Flags& f) {
  constexpr int kWindow = 32;  // bounded in-flight txns: keeps mailboxes sane
  db::Engine& engine = database.engine();
  const int num_nodes = database.options().num_nodes;
  const bool trigger_advancement =
      f.advance_ms > 0 && database.options().scheme != db::Scheme::kS2pl;

  ThreadDriveStats out;
  std::mutex mu;
  std::condition_variable cv;
  int inflight = 0;
  const double total_rate = f.update_rate + f.query_rate;
  const double query_frac = total_rate > 0 ? f.query_rate / total_rate : 0.2;
  wl::ScriptGenerator gen(spec, Rng(f.seed));
  Rng mix(f.seed ^ 0x6a09e667f3bcc908ull);

  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::seconds(f.seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    {
      std::unique_lock<std::mutex> lk(mu);
      cv.wait(lk, [&] { return inflight < kWindow; });
      ++inflight;
    }
    const bool is_query = mix.Bernoulli(query_frac);
    txn::TxnScript script = is_query ? gen.NextQuery() : gen.NextUpdate();
    engine.Submit(database.NextTxnId(), std::move(script),
                  [&, is_query](const db::TxnResult& r) {
                    std::lock_guard<std::mutex> lk(mu);
                    --inflight;
                    if (r.outcome != TxnOutcome::kCommitted) {
                      ++out.aborted;
                    } else if (is_query) {
                      ++out.committed_queries;
                    } else {
                      ++out.committed_updates;
                    }
                    cv.notify_all();
                  });
    ++out.submitted;
    if (trigger_advancement && out.submitted % 64 == 0) {
      const NodeId k = static_cast<NodeId>((out.submitted / 64) % num_nodes);
      database.runtime().ScheduleOn(
          k, 0, [&engine, k] { engine.TriggerAdvancement(k); });
    }
  }
  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return inflight == 0; });
  }
  out.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  // Join the workers; this also drains the per-worker trace rings, so
  // every later read (metrics, trace export, oracle) is single-threaded.
  database.Shutdown();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags f = Parse(argc, argv);
  if (f.help) {
    Usage();
    return 1;
  }
  const bool threads = f.runtime == "thread";
  if (!threads && f.runtime != "sim") {
    std::fprintf(stderr, "unknown runtime %s (want sim or thread)\n",
                 f.runtime.c_str());
    return 1;
  }

  db::DatabaseOptions options;
  options.runtime = threads ? db::RuntimeKind::kThread : db::RuntimeKind::kSim;
  options.num_nodes = f.nodes;
  options.seed = f.seed;
  options.enable_trace = f.trace || !f.trace_out.empty();
  options.timeseries_interval = f.sample_ms * kMillisecond;
  options.ava3.recovery = f.in_place ? wal::RecoveryScheme::kInPlace
                                     : wal::RecoveryScheme::kNoUndo;
  options.ava3.eager_counter_handoff = f.eager;
  options.ava3.continuous_advancement = f.continuous;
  if (f.scheme == "ava3") {
    options.scheme = db::Scheme::kAva3;
  } else if (f.scheme == "s2pl") {
    options.scheme = db::Scheme::kS2pl;
  } else if (f.scheme == "mvu") {
    options.scheme = db::Scheme::kMvu;
  } else if (f.scheme == "fourv") {
    options.scheme = db::Scheme::kFourV;
    if (f.nodes != 1) {
      std::fprintf(stderr, "fourv models a centralized scheme: --nodes=1\n");
      return 1;
    }
  } else {
    std::fprintf(stderr, "unknown scheme %s\n", f.scheme.c_str());
    return 1;
  }

  if (threads && (f.partitions > 0 || f.crashes > 0)) {
    // A partitioned or crashed root black-holes its in-flight txns; the
    // closed-loop driver below would jam waiting for completions that
    // never come. Message-level chaos (loss/dup/delay) is fine.
    std::fprintf(stderr,
                 "note: --partitions/--crashes are ignored under "
                 "--runtime=thread (the closed-loop driver needs every "
                 "root to stay reachable)\n");
    f.partitions = 0;
    f.crashes = 0;
  }
  sim::ChaosProfile profile;
  profile.rates.loss = f.loss;
  profile.rates.duplicate = f.dup;
  profile.rates.delay = f.delay;
  profile.partitions = f.partitions;
  profile.crashes = f.crashes;
  options.faults = sim::FaultPlan::Chaos(f.seed, f.nodes,
                                         f.seconds * kSecond, profile);
  if (threads && f.loss > 0) {
    // Loss forces the timeout/resend paths; tighten them to wall-clock
    // scale so a dropped prepare costs milliseconds, not simulated-minutes.
    options.base.txn_timeout = 300 * kMillisecond;
    options.base.prepared_timeout = 900 * kMillisecond;
  }

  Status status;
  std::unique_ptr<db::Database> dbptr = db::Database::Create(options, &status);
  if (dbptr == nullptr) {
    std::fprintf(stderr, "invalid options: %s\n", status.ToString().c_str());
    return 1;
  }
  db::Database& database = *dbptr;
  if (f.trace) {
    database.trace().SetListener([](const TraceEvent& ev) {
      if (!IsNarrative(ev)) return;
      std::printf("%10lld n%d  %s\n", static_cast<long long>(ev.time),
                  ev.node, Render(ev).c_str());
    });
  }

  wl::WorkloadSpec spec;
  spec.num_nodes = f.nodes;
  spec.items_per_node = f.items;
  spec.zipf_theta = f.zipf;
  spec.update_rate_per_sec = f.update_rate;
  spec.query_rate_per_sec = f.query_rate;
  spec.update_delete_fraction = f.delete_fraction;
  spec.query_scan_fraction = f.scan_fraction;
  spec.advancement_period = f.advance_ms * kMillisecond;
  spec.rotate_coordinator = true;

  std::printf("scheme=%s runtime=%s nodes=%d items/node=%lld zipf=%.2f "
              "seed=%llu\n",
              database.engine().name(),
              db::RuntimeKindName(options.runtime), f.nodes,
              static_cast<long long>(f.items), f.zipf,
              static_cast<unsigned long long>(f.seed));

  std::map<ItemId, int64_t> initial;
  std::optional<wl::WorkloadRunner> runner;
  ThreadDriveStats tstats;
  if (threads) {
    for (NodeId n = 0; n < f.nodes; ++n) {
      for (int64_t i = 0; i < spec.items_per_node; ++i) {
        const ItemId item = spec.FirstItemOf(n) + i;
        database.LoadInitial(n, item, spec.initial_value);
        initial[item] = spec.initial_value;
      }
    }
    tstats = DriveThreadRuntime(database, spec, f);
  } else {
    runner.emplace(&database.simulator(), &database.engine(), spec, f.seed);
    initial = runner->SeedData();
    runner->Start(f.seconds * kSecond);
    database.RunFor(f.seconds * kSecond);
    // Drain to quiescence. Under faults the retry tail can run for up to
    // max_retries * txn_timeout past the load window; verifying before the
    // stragglers resolve reports spurious oracle violations.
    SimDuration drain = 60 * kSecond;
    if (options.faults.Enabled()) {
      drain += spec.max_retries * options.base.txn_timeout +
               options.base.prepared_timeout;
    }
    database.RunFor(drain);
  }

  // Both runtimes report through the same merged snapshot (the thread
  // runtime's shards were quiesced by Shutdown above).
  const db::MetricsSnapshot m = database.SnapshotMetrics();
  if (threads) {
    std::printf("\n-- results (%.2f wall-clock seconds) --\n",
                tstats.wall_seconds);
    const double secs = tstats.wall_seconds > 0 ? tstats.wall_seconds : 1;
    std::printf("updates committed  : %llu (%.0f/s)\n",
                static_cast<unsigned long long>(tstats.committed_updates),
                static_cast<double>(tstats.committed_updates) / secs);
    std::printf("queries committed  : %llu (%.0f/s)\n",
                static_cast<unsigned long long>(tstats.committed_queries),
                static_cast<double>(tstats.committed_queries) / secs);
  } else {
    const auto& s = runner->stats();
    std::printf("\n-- results (%d simulated seconds) --\n", f.seconds);
    std::printf("updates committed  : %llu (%.0f/s), retries %llu, gave up "
                "%llu\n",
                static_cast<unsigned long long>(s.committed_updates),
                static_cast<double>(s.committed_updates) / f.seconds,
                static_cast<unsigned long long>(s.retries),
                static_cast<unsigned long long>(s.gave_up));
    std::printf("queries committed  : %llu (%.0f/s)\n",
                static_cast<unsigned long long>(s.committed_queries),
                static_cast<double>(s.committed_queries) / f.seconds);
  }
  std::printf("update latency us  : %s\n", m.update_latency.Summary().c_str());
  std::printf("query latency us   : %s\n", m.query_latency.Summary().c_str());
  std::printf("aborts             : %llu (deadlock %llu, sync %llu)\n",
              static_cast<unsigned long long>(m.aborts),
              static_cast<unsigned long long>(m.deadlock_aborts),
              static_cast<unsigned long long>(m.sync_mismatch_aborts));
  if (options.scheme == db::Scheme::kAva3 ||
      options.scheme == db::Scheme::kFourV) {
    std::printf("advancements       : %llu completed, %llu cancelled\n",
                static_cast<unsigned long long>(m.advancements),
                static_cast<unsigned long long>(m.advancements_cancelled));
    std::printf("moveToFutures      : %llu (%llu log records scanned)\n",
                static_cast<unsigned long long>(m.mtf_count),
                static_cast<unsigned long long>(m.mtf_records_scanned));
    std::printf("snapshot staleness : %s\n", m.staleness.Summary().c_str());
    auto* eng = database.ava3_engine();
    int max_versions = 0;
    for (int n = 0; n < f.nodes; ++n) {
      max_versions =
          std::max(max_versions, eng->store(n).MaxLiveVersionsObserved());
    }
    std::printf("max live versions  : %d\n", max_versions);
    std::printf("latch ops          : %llu\n",
                static_cast<unsigned long long>(eng->TotalLatchOps()));
  }
  if (threads) {
    std::printf("transport          : %s\n",
                database.thread_runtime()->StatsSummary().c_str());
  } else {
    std::printf("network            : %s\n",
                database.network().StatsSummary().c_str());
  }
  if (const sim::FaultInjector* inj = database.fault_injector()) {
    std::string fs = inj->StatsSummary();  // starts with "faults: "
    if (fs.rfind("faults: ", 0) == 0) fs.erase(0, 8);
    std::printf("faults             : %s; crashes=%llu recoveries=%llu\n",
                fs.c_str(), static_cast<unsigned long long>(m.crashes),
                static_cast<unsigned long long>(m.recoveries));
  }

  if (!f.trace_out.empty()) {
    TraceExportOptions topts;
    topts.sampler = database.sampler();
    topts.faults = &options.faults;
    if (WriteChromeTrace(database.trace(), f.trace_out, topts)) {
      std::printf("trace written      : %s (%zu events",
                  f.trace_out.c_str(), database.trace().events().size());
      if (database.trace().dropped() > 0) {
        std::printf(", %llu dropped at ring overflow",
                    static_cast<unsigned long long>(
                        database.trace().dropped()));
      }
      std::printf(")\n");
    } else {
      std::fprintf(stderr, "failed to write %s\n", f.trace_out.c_str());
      return 1;
    }
  }
  if (!f.metrics_out.empty()) {
    std::FILE* out = std::fopen(f.metrics_out.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "failed to write %s\n", f.metrics_out.c_str());
      return 1;
    }
    const std::string json = m.ToJson();
    std::fwrite(json.data(), 1, json.size(), out);
    std::fputc('\n', out);
    std::fclose(out);
    std::printf("metrics written    : %s\n", f.metrics_out.c_str());
  }
  if (!f.openmetrics_out.empty()) {
    if (!WriteOpenMetrics(m, f.openmetrics_out, database.sampler())) {
      std::fprintf(stderr, "failed to write %s\n", f.openmetrics_out.c_str());
      return 1;
    }
    std::printf("openmetrics written: %s\n", f.openmetrics_out.c_str());
  }

  if (f.verify) {
    verify::SerializabilityChecker checker(initial);
    Status ok = checker.Check(database.recorder().txns());
    std::printf("\nserializability oracle: %s\n", ok.ToString().c_str());
    if (auto* eng = database.ava3_engine()) {
      Status inv = eng->CheckInvariants();
      std::printf("section 6.2 invariants: %s\n", inv.ToString().c_str());
      if (!inv.ok()) return 1;
    }
    if (!ok.ok()) return 1;
  }
  return 0;
}
