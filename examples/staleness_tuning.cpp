// Staleness tuning: Section 8 of the paper. Queries in AVA3 read a stale
// snapshot; the advancement cadence is the tuning knob. This example sweeps
// the advancement period and prints the staleness a query experiences,
// ending with the continuous-advancement + eager-handoff configuration
// whose bound is "the age of the longest query running when Q started".
//
// Run: ./build/examples/staleness_tuning

#include <cstdio>

#include "engine/database.h"
#include "workload/runner.h"

using namespace ava3;

namespace {

struct Row {
  const char* label;
  SimDuration period;
  bool eager;
  bool continuous;
};

void RunRow(const Row& row) {
  db::DatabaseOptions options;
  options.num_nodes = 3;
  options.seed = 11;
  options.ava3.eager_counter_handoff = row.eager;
  options.ava3.continuous_advancement = row.continuous;
  db::Database database(options);

  wl::WorkloadSpec spec;
  spec.num_nodes = 3;
  spec.items_per_node = 200;
  spec.update_rate_per_sec = 400;
  spec.query_rate_per_sec = 100;
  spec.update_think = 2 * kMillisecond;  // non-trivial transactions
  spec.advancement_period = row.period;
  spec.rotate_coordinator = true;
  wl::WorkloadRunner runner(&database.simulator(), &database.engine(), spec,
                            options.seed);
  runner.SeedData();
  runner.Start(5 * kSecond);
  database.RunFor(5 * kSecond);
  database.RunFor(30 * kSecond);

  const auto& m = database.metrics();
  std::printf("%-28s %10lld %8llu %12.1f %12lld %12lld\n", row.label,
              static_cast<long long>(row.period / kMillisecond),
              static_cast<unsigned long long>(m.advancements()),
              m.staleness().Mean() / 1000.0,
              static_cast<long long>(m.staleness().Percentile(99) / 1000),
              static_cast<long long>(m.phase1_duration().Percentile(50)));
}

}  // namespace

int main() {
  std::printf("Query snapshot staleness vs. version-advancement cadence\n");
  std::printf("(5 simulated seconds, 3 nodes, 400 updates/s, 100 queries/s)\n\n");
  std::printf("%-28s %10s %8s %12s %12s %12s\n", "configuration",
              "period(ms)", "rounds", "stale avg(ms)", "p99(ms)",
              "phase1 p50(us)");
  const Row rows[] = {
      {"period = 1 s", 1000 * kMillisecond, false, false},
      {"period = 500 ms", 500 * kMillisecond, false, false},
      {"period = 250 ms", 250 * kMillisecond, false, false},
      {"period = 100 ms", 100 * kMillisecond, false, false},
      {"period = 50 ms", 50 * kMillisecond, false, false},
      {"50 ms + eager handoff", 50 * kMillisecond, true, false},
      {"20 ms continuous + eager", 20 * kMillisecond, true, true},
  };
  for (const Row& row : rows) RunRow(row);
  std::printf(
      "\nMore frequent advancement -> fresher snapshots; the eager-handoff\n"
      "optimization keeps Phase 1 short even with in-flight transactions,\n"
      "and continuous advancement lets rounds run back-to-back (Section 8).\n");
  return 0;
}
