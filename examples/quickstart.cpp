// Quickstart: a single-node (centralized, paper Section 7) AVA3 database.
//
// Shows the core lifecycle: load data, run update transactions and
// lock-free queries, observe that queries read the stable snapshot, advance
// versions asynchronously, and watch the fresher snapshot appear.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "engine/database.h"

using namespace ava3;            // examples favor brevity
using txn::Op;

int main() {
  // A 1-node AVA3 database. All defaults: no-undo recovery, 0.5 ms network
  // hops (loopback here), deterministic seed.
  db::DatabaseOptions options;
  options.num_nodes = 1;
  db::Database database(options);
  auto& engine = database.engine();
  auto* ava3 = database.ava3_engine();

  // Load three accounts at version 0 (the paper's start-up state).
  engine.LoadInitial(0, /*item=*/1, /*value=*/1000);
  engine.LoadInitial(0, 2, 2000);
  engine.LoadInitial(0, 3, 3000);

  std::printf("== initial control state: q=%lld u=%lld g=%lld\n",
              static_cast<long long>(ava3->control(0).q()),
              static_cast<long long>(ava3->control(0).u()),
              static_cast<long long>(ava3->control(0).g()));

  // An update transaction: transfer 250 from account 1 to account 2.
  auto transfer = database.RunToCompletion(txn::SingleNodeUpdate(
      0, {Op::Add(1, -250), Op::Add(2, +250)}));
  std::printf("transfer committed in version %lld\n",
              static_cast<long long>(transfer.commit_version));

  // A read-only query. It takes NO locks and reads the stable snapshot
  // (version 0): the transfer is not visible yet.
  auto audit = database.RunToCompletion(txn::SingleNodeQuery(0, {1, 2, 3}));
  std::printf("query before advancement (V=%lld): a1=%lld a2=%lld a3=%lld\n",
              static_cast<long long>(audit.commit_version),
              static_cast<long long>(audit.reads[0].value),
              static_cast<long long>(audit.reads[1].value),
              static_cast<long long>(audit.reads[2].value));

  // Advance versions. This runs fully asynchronously with user
  // transactions; here the system is idle so it finishes immediately.
  engine.TriggerAdvancement(0);
  database.RunFor(kSecond);

  auto fresh = database.RunToCompletion(txn::SingleNodeQuery(0, {1, 2, 3}));
  std::printf("query after advancement  (V=%lld): a1=%lld a2=%lld a3=%lld\n",
              static_cast<long long>(fresh.commit_version),
              static_cast<long long>(fresh.reads[0].value),
              static_cast<long long>(fresh.reads[1].value),
              static_cast<long long>(fresh.reads[2].value));

  std::printf("== final control state: q=%lld u=%lld g=%lld, "
              "advancements=%llu, max live versions=%d (bound: 3)\n",
              static_cast<long long>(ava3->control(0).q()),
              static_cast<long long>(ava3->control(0).u()),
              static_cast<long long>(ava3->control(0).g()),
              static_cast<unsigned long long>(database.metrics().advancements()),
              ava3->store(0).MaxLiveVersionsObserved());
  return 0;
}
